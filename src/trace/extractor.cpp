#include "trace/extractor.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <ctime>
#include <sstream>

namespace dbaugur::trace {

StatusOr<ts::Timestamp> ParseTimestamp(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty timestamp");
  // Pure integer => epoch seconds.
  bool all_digits = std::all_of(text.begin(), text.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  });
  if (all_digits) {
    // from_chars instead of stoll: a digit string too long for int64
    // ("99999999999999999999999") must be a clean InvalidArgument, not an
    // uncaught std::out_of_range terminating the process.
    int64_t v = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return Status::InvalidArgument("timestamp out of range: " + text);
    }
    return static_cast<ts::Timestamp>(v);
  }
  // "YYYY-MM-DD HH:MM:SS" or with 'T'.
  int y, mo, d, h, mi, s;
  char sep;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c%d:%d:%d", &y, &mo, &d, &sep, &h,
                  &mi, &s) == 7 &&
      (sep == ' ' || sep == 'T')) {
    if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
        mi > 59 || s < 0 || s > 60) {
      return Status::InvalidArgument("timestamp fields out of range: " + text);
    }
    std::tm tm{};
    tm.tm_year = y - 1900;
    tm.tm_mon = mo - 1;
    tm.tm_mday = d;
    tm.tm_hour = h;
    tm.tm_min = mi;
    tm.tm_sec = s;
    // timegm avoids timezone dependence.
    time_t t = timegm(&tm);
    if (t == static_cast<time_t>(-1)) {
      return Status::InvalidArgument("unrepresentable timestamp: " + text);
    }
    return static_cast<ts::Timestamp>(t);
  }
  return Status::InvalidArgument("unrecognized timestamp format: " + text);
}

ParsedQueryLog ParseQueryLogLenient(const std::string& text) {
  ParsedQueryLog out;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  auto reject = [&](uint64_t* counter, const char* what) {
    ++*counter;
    if (out.first_bad_line == 0) {
      out.first_bad_line = line_no;
      out.first_error = "log line " + std::to_string(line_no) + ": " + what;
    }
  };
  while (std::getline(in, line)) {
    ++line_no;
    // Trim.
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    std::string trimmed = line.substr(b, e - b + 1);
    // Timestamp may be "DATE TIME SQL" (two fields) or "EPOCH SQL" /
    // "DATETTIME SQL" (one field).
    size_t sp1 = trimmed.find(' ');
    if (sp1 == std::string::npos) {
      reject(&out.rejected.no_sql, "no SQL after timestamp");
      continue;
    }
    std::string first = trimmed.substr(0, sp1);
    auto t1 = ParseTimestamp(first);
    if (t1.ok()) {
      out.entries.push_back({*t1, trimmed.substr(sp1 + 1)});
      continue;
    }
    size_t sp2 = trimmed.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      auto t2 = ParseTimestamp(trimmed.substr(0, sp2));
      if (t2.ok()) {
        out.entries.push_back({*t2, trimmed.substr(sp2 + 1)});
        continue;
      }
    }
    reject(&out.rejected.bad_timestamp, "bad timestamp");
  }
  return out;
}

StatusOr<std::vector<LogEntry>> ParseQueryLog(const std::string& text) {
  ParsedQueryLog parsed = ParseQueryLogLenient(text);
  if (parsed.rejected.total() > 0) {
    return Status::InvalidArgument(parsed.first_error);
  }
  return std::move(parsed.entries);
}

Status TraceExtractor::Ingest(const LogEntry& entry) {
  if (opts_.interval_seconds <= 0) {
    return Status::InvalidArgument("interval must be positive");
  }
  auto id = registry_.Record(entry.sql);
  if (!id.ok()) return id.status();
  if (*id >= bins_.size()) bins_.resize(*id + 1);
  int64_t bin = entry.timestamp / opts_.interval_seconds;
  if (entry.timestamp < 0 && entry.timestamp % opts_.interval_seconds != 0) {
    --bin;  // floor division for negative timestamps
  }
  bins_[*id][bin] += 1.0;
  if (max_bin_ < min_bin_) {
    min_bin_ = max_bin_ = bin;
  } else {
    min_bin_ = std::min(min_bin_, bin);
    max_bin_ = std::max(max_bin_, bin);
  }
  ++entry_count_;
  return Status::OK();
}

bool TraceExtractor::IngestLenient(const LogEntry& entry) {
  Status st = Ingest(entry);
  if (st.ok()) return true;
  ++rejected_statements_;
  return false;
}

Status TraceExtractor::IngestLog(const std::vector<LogEntry>& entries) {
  for (const auto& e : entries) {
    DBAUGUR_RETURN_IF_ERROR(Ingest(e));
  }
  return Status::OK();
}

StatusOr<std::vector<ts::Series>> TraceExtractor::TemplateTraces() const {
  if (entry_count_ == 0) {
    return Status::FailedPrecondition("no log entries ingested");
  }
  size_t len = static_cast<size_t>(max_bin_ - min_bin_ + 1);
  std::vector<ts::Series> out;
  out.reserve(bins_.size());
  for (size_t id = 0; id < bins_.size(); ++id) {
    std::vector<double> values(len, 0.0);
    for (const auto& [bin, count] : bins_[id]) {
      values[static_cast<size_t>(bin - min_bin_)] = count;
    }
    out.emplace_back(min_bin_ * opts_.interval_seconds, opts_.interval_seconds,
                     std::move(values), "template_" + std::to_string(id));
  }
  return out;
}

StatusOr<ts::Series> TraceExtractor::TotalTrace() const {
  auto traces = TemplateTraces();
  if (!traces.ok()) return traces.status();
  auto total = ts::Series::Sum(*traces);
  if (!total.ok()) return total.status();
  total->set_name("total");
  return total;
}

StatusOr<ts::Series> BinResourceSamples(
    const std::vector<ResourceSample>& samples, int64_t interval_seconds,
    std::string name) {
  if (samples.empty()) return Status::InvalidArgument("no resource samples");
  if (interval_seconds <= 0) {
    return Status::InvalidArgument("interval must be positive");
  }
  int64_t min_bin = samples[0].timestamp / interval_seconds;
  int64_t max_bin = min_bin;
  for (const auto& s : samples) {
    int64_t bin = s.timestamp / interval_seconds;
    min_bin = std::min(min_bin, bin);
    max_bin = std::max(max_bin, bin);
  }
  size_t len = static_cast<size_t>(max_bin - min_bin + 1);
  std::vector<double> sums(len, 0.0);
  std::vector<int64_t> counts(len, 0);
  for (const auto& s : samples) {
    size_t i = static_cast<size_t>(s.timestamp / interval_seconds - min_bin);
    sums[i] += s.value;
    counts[i] += 1;
  }
  std::vector<double> values(len, 0.0);
  double last = 0.0;
  bool seen = false;
  for (size_t i = 0; i < len; ++i) {
    if (counts[i] > 0) {
      last = sums[i] / static_cast<double>(counts[i]);
      seen = true;
    }
    values[i] = seen ? last : 0.0;
  }
  return ts::Series(min_bin * interval_seconds, interval_seconds,
                    std::move(values), std::move(name));
}

}  // namespace dbaugur::trace

// Workload trace extraction (paper §IV-A): parses timestamped query logs,
// maps each statement to its SQL template, and bins occurrences per template
// at the forecasting interval to produce arrival-rate traces. Resource
// samples (CPU/memory/disk ratios) are binned to utilization traces.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/templater.h"
#include "ts/series.h"

namespace dbaugur::trace {

/// One query-log record.
struct LogEntry {
  ts::Timestamp timestamp = 0;
  std::string sql;
};

/// Per-class rejection counters for lenient log parsing.
struct LogRejectStats {
  uint64_t no_sql = 0;         ///< Line had no statement after the timestamp.
  uint64_t bad_timestamp = 0;  ///< Leading field(s) not a parseable timestamp.

  uint64_t total() const { return no_sql + bad_timestamp; }
};

/// Result of a lenient parse: every well-formed line, plus counters for the
/// rejected ones and the first rejection's diagnostics.
struct ParsedQueryLog {
  std::vector<LogEntry> entries;
  LogRejectStats rejected;
  size_t first_bad_line = 0;  ///< 1-based line number; 0 when nothing rejected.
  std::string first_error;    ///< Empty when nothing rejected.
};

/// Parses "<timestamp> <sql...>" lines. The timestamp is either epoch seconds
/// or "YYYY-MM-DD HH:MM:SS" / "YYYY-MM-DDTHH:MM:SS". Blank lines are skipped;
/// malformed lines produce InvalidArgument with the line number.
StatusOr<std::vector<LogEntry>> ParseQueryLog(const std::string& text);

/// Lenient variant: malformed lines are skipped and counted per rejection
/// class instead of failing the whole parse — the shape a log shipper needs
/// (one truncated line must not discard the batch). ParseQueryLog is this
/// plus "any rejection fails with the first line's error".
ParsedQueryLog ParseQueryLogLenient(const std::string& text);

/// Parses one timestamp in the formats above. Digit strings that overflow
/// int64 are InvalidArgument (never an exception).
StatusOr<ts::Timestamp> ParseTimestamp(const std::string& text);

/// Extraction configuration.
struct ExtractionOptions {
  int64_t interval_seconds = 600;  ///< Forecasting interval I (paper: 10 min).
  sql::TemplateOptions template_opts;
};

/// Streaming extractor: ingest log entries, then materialize per-template
/// arrival-rate traces over the observed time range.
class TraceExtractor {
 public:
  explicit TraceExtractor(const ExtractionOptions& opts) : opts_(opts) {}

  /// Templates the statement and counts it in its time bin.
  Status Ingest(const LogEntry& entry);
  Status IngestLog(const std::vector<LogEntry>& entries);

  /// Lenient variant: a statement the templater rejects (tokenizer error,
  /// embedded garbage) is counted in rejected_statements() and skipped
  /// instead of failing — returns whether the entry was ingested.
  bool IngestLenient(const LogEntry& entry);

  /// One arrival-rate Series per template id, all aligned to the same start
  /// and length (bins with no occurrences are zero).
  StatusOr<std::vector<ts::Series>> TemplateTraces() const;

  /// Total arrival-rate trace across all templates.
  StatusOr<ts::Series> TotalTrace() const;

  const sql::TemplateRegistry& registry() const { return registry_; }
  size_t entry_count() const { return entry_count_; }
  /// Statements skipped by IngestLenient since construction.
  uint64_t rejected_statements() const { return rejected_statements_; }

 private:
  ExtractionOptions opts_;
  sql::TemplateRegistry registry_{sql::TemplateOptions()};
  // template id -> (bin index -> count); bin = floor(ts / interval).
  std::vector<std::map<int64_t, double>> bins_;
  int64_t min_bin_ = 0, max_bin_ = -1;
  size_t entry_count_ = 0;
  uint64_t rejected_statements_ = 0;
};

/// One resource-utilization sample.
struct ResourceSample {
  ts::Timestamp timestamp = 0;
  double value = 0.0;
};

/// Bins resource samples to a utilization Series by averaging within each
/// interval; empty bins carry the previous bin's value (metrics are sampled
/// state, not counts).
StatusOr<ts::Series> BinResourceSamples(const std::vector<ResourceSample>& samples,
                                        int64_t interval_seconds,
                                        std::string name = "resource");

}  // namespace dbaugur::trace

#include "ts/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace dbaugur::ts {

double Autocorrelation(const std::vector<double>& v, size_t lag) {
  if (lag == 0) return 1.0;
  if (lag >= v.size() || v.size() < 2) return 0.0;
  double mean = Mean(v);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i + lag < v.size(); ++i) {
    num += (v[i] - mean) * (v[i + lag] - mean);
  }
  for (double x : v) den += (x - mean) * (x - mean);
  if (den <= 0.0) return 0.0;
  return num / den;
}

std::vector<double> AutocorrelationFunction(const std::vector<double>& v,
                                            size_t max_lag) {
  max_lag = std::min(max_lag, v.empty() ? 0 : v.size() - 1);
  std::vector<double> out(max_lag, 0.0);
  if (v.size() < 2) return out;
  // One pass over the mean/denominator, then per-lag numerators.
  double mean = Mean(v);
  double den = 0.0;
  for (double x : v) den += (x - mean) * (x - mean);
  if (den <= 0.0) return out;
  for (size_t lag = 1; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (size_t i = 0; i + lag < v.size(); ++i) {
      num += (v[i] - mean) * (v[i + lag] - mean);
    }
    out[lag - 1] = num / den;
  }
  return out;
}

StatusOr<PeriodEstimate> DetectPeriod(const std::vector<double>& v,
                                      size_t min_lag, size_t max_lag,
                                      double min_strength) {
  if (min_lag == 0 || max_lag < min_lag) {
    return Status::InvalidArgument("DetectPeriod: bad lag range");
  }
  if (v.size() < max_lag + 2) {
    return Status::InvalidArgument("DetectPeriod: series shorter than max_lag");
  }
  std::vector<double> acf = AutocorrelationFunction(v, max_lag + 1);
  PeriodEstimate best;
  for (size_t lag = std::max<size_t>(2, min_lag); lag <= max_lag; ++lag) {
    double cur = acf[lag - 1];
    double prev = acf[lag - 2];
    double next = acf[lag];  // acf has max_lag+1 entries
    bool local_peak = cur >= prev && cur >= next;
    if (local_peak && cur > best.strength) {
      best.period = lag;
      best.strength = cur;
    }
  }
  if (best.period == 0 || best.strength < min_strength) {
    return Status::NotFound("DetectPeriod: no autocorrelation peak above threshold");
  }
  return best;
}

std::vector<double> RollingMean(const std::vector<double>& v, size_t radius) {
  std::vector<double> out(v.size(), 0.0);
  if (v.empty()) return out;
  // Prefix sums for O(n).
  std::vector<double> prefix(v.size() + 1, 0.0);
  for (size_t i = 0; i < v.size(); ++i) prefix[i + 1] = prefix[i] + v[i];
  for (size_t i = 0; i < v.size(); ++i) {
    size_t lo = i > radius ? i - radius : 0;
    size_t hi = std::min(v.size() - 1, i + radius);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> RollingStdDev(const std::vector<double>& v, size_t radius) {
  std::vector<double> out(v.size(), 0.0);
  if (v.empty()) return out;
  std::vector<double> prefix(v.size() + 1, 0.0);
  std::vector<double> prefix2(v.size() + 1, 0.0);
  for (size_t i = 0; i < v.size(); ++i) {
    prefix[i + 1] = prefix[i] + v[i];
    prefix2[i + 1] = prefix2[i] + v[i] * v[i];
  }
  for (size_t i = 0; i < v.size(); ++i) {
    size_t lo = i > radius ? i - radius : 0;
    size_t hi = std::min(v.size() - 1, i + radius);
    double n = static_cast<double>(hi - lo + 1);
    double mean = (prefix[hi + 1] - prefix[lo]) / n;
    double mean2 = (prefix2[hi + 1] - prefix2[lo]) / n;
    out[i] = std::sqrt(std::max(0.0, mean2 - mean * mean));
  }
  return out;
}

std::vector<size_t> DetectBursts(const std::vector<double>& v, size_t radius,
                                 double k) {
  std::vector<size_t> out;
  auto mean = RollingMean(v, radius);
  auto sd = RollingStdDev(v, radius);
  for (size_t i = 0; i < v.size(); ++i) {
    if (sd[i] > 0.0 && std::fabs(v[i] - mean[i]) > k * sd[i]) out.push_back(i);
  }
  return out;
}

}  // namespace dbaugur::ts

// Trace analysis utilities: autocorrelation, dominant-period detection, and
// rolling statistics. Used to characterize workload patterns (Fig. 2) and to
// pick sensible windows/horizons for unseen traces.

#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace dbaugur::ts {

/// Sample autocorrelation of `v` at `lag` (0 when undefined or lag >= size).
double Autocorrelation(const std::vector<double>& v, size_t lag);

/// Autocorrelation for every lag in [1, max_lag].
std::vector<double> AutocorrelationFunction(const std::vector<double>& v,
                                            size_t max_lag);

/// Result of period detection.
struct PeriodEstimate {
  size_t period = 0;        ///< Lag of the strongest autocorrelation peak.
  double strength = 0.0;    ///< Autocorrelation at that lag.
};

/// Finds the dominant period as the strongest *local* autocorrelation peak
/// in [min_lag, max_lag]. Returns NotFound when no local peak exceeds
/// `min_strength` (e.g. white noise or pure trend).
StatusOr<PeriodEstimate> DetectPeriod(const std::vector<double>& v,
                                      size_t min_lag, size_t max_lag,
                                      double min_strength = 0.2);

/// Rolling mean with a centered window of half-width `radius` (edges use the
/// available samples).
std::vector<double> RollingMean(const std::vector<double>& v, size_t radius);

/// Rolling population standard deviation, same windowing as RollingMean.
std::vector<double> RollingStdDev(const std::vector<double>& v, size_t radius);

/// Indices where v deviates from its rolling mean by more than `k` rolling
/// standard deviations — a simple burst detector for workload traces.
std::vector<size_t> DetectBursts(const std::vector<double>& v, size_t radius,
                                 double k);

}  // namespace dbaugur::ts

#include "ts/metrics.h"

#include <cmath>

namespace dbaugur::ts {

namespace {
Status CheckShapes(const std::vector<double>& p, const std::vector<double>& a) {
  if (p.size() != a.size()) {
    return Status::InvalidArgument("metric: size mismatch");
  }
  if (p.empty()) return Status::InvalidArgument("metric: empty input");
  return Status::OK();
}
}  // namespace

StatusOr<double> MSE(const std::vector<double>& predicted,
                     const std::vector<double>& actual) {
  DBAUGUR_RETURN_IF_ERROR(CheckShapes(predicted, actual));
  double s = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    double d = predicted[i] - actual[i];
    s += d * d;
  }
  return s / static_cast<double>(predicted.size());
}

StatusOr<double> MAE(const std::vector<double>& predicted,
                     const std::vector<double>& actual) {
  DBAUGUR_RETURN_IF_ERROR(CheckShapes(predicted, actual));
  double s = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    s += std::fabs(predicted[i] - actual[i]);
  }
  return s / static_cast<double>(predicted.size());
}

StatusOr<double> RMSE(const std::vector<double>& predicted,
                      const std::vector<double>& actual) {
  auto mse = MSE(predicted, actual);
  if (!mse.ok()) return mse.status();
  return std::sqrt(*mse);
}

StatusOr<double> SMAPE(const std::vector<double>& predicted,
                       const std::vector<double>& actual) {
  DBAUGUR_RETURN_IF_ERROR(CheckShapes(predicted, actual));
  double s = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    double denom = (std::fabs(predicted[i]) + std::fabs(actual[i])) / 2.0;
    if (denom > 0.0) s += std::fabs(predicted[i] - actual[i]) / denom;
  }
  return s / static_cast<double>(predicted.size());
}

}  // namespace dbaugur::ts

// Forecast error metrics. The paper evaluates with Mean Square Error (MSE).

#pragma once

#include <vector>

#include "common/status.h"

namespace dbaugur::ts {

/// Mean squared error between predictions and actuals.
StatusOr<double> MSE(const std::vector<double>& predicted,
                     const std::vector<double>& actual);

/// Mean absolute error.
StatusOr<double> MAE(const std::vector<double>& predicted,
                     const std::vector<double>& actual);

/// Root mean squared error.
StatusOr<double> RMSE(const std::vector<double>& predicted,
                      const std::vector<double>& actual);

/// Symmetric mean absolute percentage error in [0, 2].
StatusOr<double> SMAPE(const std::vector<double>& predicted,
                       const std::vector<double>& actual);

}  // namespace dbaugur::ts

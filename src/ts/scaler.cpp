#include "ts/scaler.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace dbaugur::ts {

Status MinMaxScaler::Fit(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("MinMaxScaler: empty input");
  auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  min_ = *lo;
  max_ = *hi;
  fitted_ = true;
  return Status::OK();
}

Status MinMaxScaler::Restore(double lo, double hi) {
  if (!(lo <= hi)) {  // also rejects NaN bounds
    return Status::InvalidArgument("MinMaxScaler: invalid restored range");
  }
  min_ = lo;
  max_ = hi;
  fitted_ = true;
  return Status::OK();
}

double MinMaxScaler::Transform(double x) const {
  double range = max_ - min_;
  if (range <= 0.0) return 0.5;
  return (x - min_) / range;
}

double MinMaxScaler::Inverse(double x) const {
  double range = max_ - min_;
  if (range <= 0.0) return min_;
  return x * range + min_;
}

std::vector<double> MinMaxScaler::Transform(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Transform(v[i]);
  return out;
}

std::vector<double> MinMaxScaler::Inverse(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Inverse(v[i]);
  return out;
}

Status StandardScaler::Fit(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("StandardScaler: empty input");
  mean_ = Mean(v);
  stddev_ = StdDev(v);
  if (stddev_ <= 0.0) stddev_ = 1.0;
  fitted_ = true;
  return Status::OK();
}

double StandardScaler::Transform(double x) const { return (x - mean_) / stddev_; }
double StandardScaler::Inverse(double x) const { return x * stddev_ + mean_; }

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Transform(v[i]);
  return out;
}

std::vector<double> StandardScaler::Inverse(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Inverse(v[i]);
  return out;
}

}  // namespace dbaugur::ts

// Value scalers. Neural models train on normalized traces; predictions are
// mapped back to the original scale before computing MSE so reported errors
// are comparable across models.

#pragma once

#include <vector>

#include "common/status.h"

namespace dbaugur::ts {

/// Min-max scaler mapping the fitted range onto [0, 1].
class MinMaxScaler {
 public:
  /// Learns the range from `v`. A constant series maps everything to 0.5.
  Status Fit(const std::vector<double>& v);

  double Transform(double x) const;
  double Inverse(double x) const;
  std::vector<double> Transform(const std::vector<double>& v) const;
  std::vector<double> Inverse(const std::vector<double>& v) const;

  /// Restores a previously fitted range (snapshot load path). `lo > hi` is
  /// rejected; `lo == hi` reproduces the constant-series behavior.
  Status Restore(double lo, double hi);

  bool fitted() const { return fitted_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  bool fitted_ = false;
  double min_ = 0.0;
  double max_ = 1.0;
};

/// Standard (z-score) scaler.
class StandardScaler {
 public:
  Status Fit(const std::vector<double>& v);

  double Transform(double x) const;
  double Inverse(double x) const;
  std::vector<double> Transform(const std::vector<double>& v) const;
  std::vector<double> Inverse(const std::vector<double>& v) const;

  bool fitted() const { return fitted_; }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace dbaugur::ts

#include "ts/series.h"

#include <algorithm>

namespace dbaugur::ts {

Series Series::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (end < begin) end = begin;
  std::vector<double> vals(values_.begin() + static_cast<ptrdiff_t>(begin),
                           values_.begin() + static_cast<ptrdiff_t>(end));
  return Series(TimeAt(begin), interval_, std::move(vals), name_);
}

StatusOr<Series> Series::AggregateSum(size_t factor) const {
  if (factor == 0) return Status::InvalidArgument("aggregate factor must be > 0");
  std::vector<double> out;
  out.reserve(values_.size() / factor);
  for (size_t i = 0; i + factor <= values_.size(); i += factor) {
    double s = 0.0;
    for (size_t j = 0; j < factor; ++j) s += values_[i + j];
    out.push_back(s);
  }
  return Series(start_, interval_ * static_cast<int64_t>(factor), std::move(out),
                name_);
}

StatusOr<Series> Series::AggregateMean(size_t factor) const {
  auto summed = AggregateSum(factor);
  if (!summed.ok()) return summed.status();
  for (double& v : summed->mutable_values()) v /= static_cast<double>(factor);
  return std::move(summed).value();
}

StatusOr<Series> Series::Sum(const std::vector<Series>& traces) {
  if (traces.empty()) return Status::InvalidArgument("Sum: no traces");
  Series out = traces[0];
  for (size_t k = 1; k < traces.size(); ++k) {
    if (traces[k].size() != out.size()) {
      return Status::InvalidArgument("Sum: trace length mismatch");
    }
    for (size_t i = 0; i < out.size(); ++i) out[i] += traces[k][i];
  }
  return out;
}

StatusOr<Series> Series::Average(const std::vector<Series>& traces) {
  auto summed = Sum(traces);
  if (!summed.ok()) return summed.status();
  double n = static_cast<double>(traces.size());
  for (double& v : summed->mutable_values()) v /= n;
  return std::move(summed).value();
}

std::vector<double> Difference(const std::vector<double>& v, int d) {
  std::vector<double> cur = v;
  for (int k = 0; k < d && cur.size() > 1; ++k) {
    std::vector<double> next(cur.size() - 1);
    for (size_t i = 0; i + 1 < cur.size(); ++i) next[i] = cur[i + 1] - cur[i];
    cur = std::move(next);
  }
  return cur;
}

double UndifferenceStep(double diff_prediction, double last_level) {
  return last_level + diff_prediction;
}

}  // namespace dbaugur::ts

// Time-series containers and transforms.
//
// A `Series` is a uniformly sampled workload trace: a start timestamp, a
// sampling interval (the paper's *forecasting interval*), and the sequence of
// values (arrival rates or utilization ratios).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbaugur::ts {

/// Seconds since epoch; plain integer keeps the library self-contained.
using Timestamp = int64_t;

/// A uniformly sampled workload trace.
class Series {
 public:
  Series() = default;
  /// `interval_seconds` is the forecasting interval I between adjacent values.
  Series(Timestamp start, int64_t interval_seconds, std::vector<double> values,
         std::string name = "")
      : start_(start),
        interval_(interval_seconds),
        values_(std::move(values)),
        name_(std::move(name)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  Timestamp start() const { return start_; }
  int64_t interval_seconds() const { return interval_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Timestamp of the i-th sample.
  Timestamp TimeAt(size_t i) const {
    return start_ + static_cast<Timestamp>(i) * interval_;
  }

  /// Appends one value at the next interval boundary.
  void Append(double v) { values_.push_back(v); }

  /// Sub-series [begin, end) keeping timestamps consistent.
  Series Slice(size_t begin, size_t end) const;

  /// Re-bins this series into a coarser interval by summing each group of
  /// `factor` consecutive samples (the paper aggregates counts when enlarging
  /// the forecasting interval). A trailing partial group is dropped.
  StatusOr<Series> AggregateSum(size_t factor) const;

  /// Same as AggregateSum but averaging (appropriate for utilization ratios).
  StatusOr<Series> AggregateMean(size_t factor) const;

  /// Element-wise sum of equally-shaped series (used when merging template
  /// traces into a cluster trace). Returns InvalidArgument on shape mismatch.
  static StatusOr<Series> Sum(const std::vector<Series>& traces);

  /// Element-wise mean of equally-shaped series (cluster representative).
  static StatusOr<Series> Average(const std::vector<Series>& traces);

 private:
  Timestamp start_ = 0;
  int64_t interval_ = 60;
  std::vector<double> values_;
  std::string name_;
};

/// Applies first-order differencing d times (ARIMA's "I"). Output is shorter
/// by d samples.
std::vector<double> Difference(const std::vector<double>& v, int d);

/// Inverts one step of differencing given the last observed level.
double UndifferenceStep(double diff_prediction, double last_level);

}  // namespace dbaugur::ts

#include "ts/window_dataset.h"

#include <algorithm>

namespace dbaugur::ts {

StatusOr<std::vector<WindowSample>> MakeWindows(
    const std::vector<double>& values, const WindowDatasetOptions& opts) {
  if (opts.window == 0) return Status::InvalidArgument("window must be > 0");
  if (opts.horizon == 0) return Status::InvalidArgument("horizon must be > 0");
  if (opts.stride == 0) return Status::InvalidArgument("stride must be > 0");
  if (values.size() < opts.window + opts.horizon) {
    return Status::InvalidArgument("series too short for window+horizon");
  }
  std::vector<WindowSample> out;
  // Window covers [i, i+window); target at i+window-1+horizon.
  for (size_t i = 0; i + opts.window - 1 + opts.horizon < values.size();
       i += opts.stride) {
    WindowSample s;
    s.window.assign(values.begin() + static_cast<ptrdiff_t>(i),
                    values.begin() + static_cast<ptrdiff_t>(i + opts.window));
    s.target_index = i + opts.window - 1 + opts.horizon;
    s.target = values[s.target_index];
    out.push_back(std::move(s));
  }
  return out;
}

void TrainTestSplit(const std::vector<double>& values, double train_fraction,
                    std::vector<double>* train, std::vector<double>* test) {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  size_t cut = static_cast<size_t>(static_cast<double>(values.size()) *
                                   train_fraction);
  train->assign(values.begin(), values.begin() + static_cast<ptrdiff_t>(cut));
  test->assign(values.begin() + static_cast<ptrdiff_t>(cut), values.end());
}

}  // namespace dbaugur::ts

// Sliding-window supervised dataset construction.
//
// Forecasting models train on (condition window, target) pairs: the window is
// the trailing T values (x_{t-T+1..t}) and the target is x_{t+H} for horizon H
// (in *steps* of the forecasting interval).

#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace dbaugur::ts {

/// One training pair: `window` has length T; `target` is the value H steps
/// after the window's last element.
struct WindowSample {
  std::vector<double> window;
  double target = 0.0;
  /// Index into the source vector of the target element.
  size_t target_index = 0;
};

/// Options controlling window extraction.
struct WindowDatasetOptions {
  size_t window = 30;   ///< T — condition window length.
  size_t horizon = 1;   ///< H — steps ahead of the window's end.
  size_t stride = 1;    ///< Step between consecutive windows.
};

/// Extracts all complete (window, target) pairs from `values`.
/// Returns InvalidArgument when values are too short for even one sample or
/// when options are degenerate.
StatusOr<std::vector<WindowSample>> MakeWindows(
    const std::vector<double>& values, const WindowDatasetOptions& opts);

/// Splits values into train/test by fraction (the paper uses 70/30): the
/// first `train_fraction` goes to `train`, the remainder to `test`.
void TrainTestSplit(const std::vector<double>& values, double train_fraction,
                    std::vector<double>* train, std::vector<double>* test);

}  // namespace dbaugur::ts

#include "workloads/generators.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"

namespace dbaugur::workloads {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
constexpr int64_t kSecondsPerDay = 86400;
}  // namespace

ts::Series GenerateBusTracker(const BusTrackerOptions& opts) {
  Rng rng(opts.seed);
  size_t steps_per_day =
      static_cast<size_t>(kSecondsPerDay / opts.interval_seconds);
  size_t n = opts.days * steps_per_day;
  std::vector<double> v(n, 0.0);

  // Pre-draw burst windows: each is (start, length, multiplier).
  struct Burst {
    size_t start, len;
    double mult;
  };
  std::vector<Burst> bursts;
  double expected = opts.burst_rate_per_day * static_cast<double>(opts.days);
  int64_t burst_count = rng.Poisson(expected);
  for (int64_t b = 0; b < burst_count; ++b) {
    size_t start = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t len = static_cast<size_t>(rng.UniformInt(5, 45));
    bool crest = rng.Bernoulli(0.6);
    double mult = crest ? opts.burst_magnitude * rng.Uniform(0.8, 1.3)
                        : opts.trough_magnitude * rng.Uniform(0.6, 1.4);
    bursts.push_back({start, len, mult});
  }

  for (size_t i = 0; i < n; ++i) {
    double day_frac =
        static_cast<double>(i % steps_per_day) / static_cast<double>(steps_per_day);
    size_t day = i / steps_per_day;
    // Two ridership peaks (morning/evening commute) on top of a daily cycle.
    double diurnal = 0.35 + 0.65 * std::max(0.0, std::sin(kTwoPi * (day_frac - 0.25)));
    double commute = 0.5 * std::exp(-std::pow((day_frac - 0.33) / 0.05, 2)) +
                     0.6 * std::exp(-std::pow((day_frac - 0.71) / 0.06, 2));
    double weekday = (day % 7 >= 5) ? opts.weekend_factor : 1.0;
    double rate = opts.base_rate *
                  (1.0 + opts.daily_amplitude * (diurnal + commute)) * weekday;
    for (const Burst& b : bursts) {
      if (i >= b.start && i < b.start + b.len) rate *= b.mult;
    }
    v[i] = static_cast<double>(rng.Poisson(rate));
  }
  return ts::Series(0, opts.interval_seconds, std::move(v), "bustracker");
}

ts::Series GenerateAlibabaDisk(const AlibabaOptions& opts) {
  Rng rng(opts.seed);
  size_t steps_per_day =
      static_cast<size_t>(kSecondsPerDay / opts.interval_seconds);
  size_t n = opts.days * steps_per_day;
  std::vector<double> v(n, 0.0);
  double period_steps =
      opts.long_period_hours * 3600.0 / static_cast<double>(opts.interval_seconds);

  // Smooth AR(1) drift gives the trace its good local linearity.
  double drift = 0.0;
  double drift_sd = 0.01 * std::sqrt(1.0 - opts.drift_smoothness *
                                               opts.drift_smoothness);

  // Burst events: sharp rises with exponential decay.
  std::vector<double> burst(n, 0.0);
  int64_t burst_count =
      rng.Poisson(opts.burst_rate_per_day * static_cast<double>(opts.days));
  for (int64_t b = 0; b < burst_count; ++b) {
    size_t start =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    double height = opts.burst_height * rng.Uniform(0.5, 1.5);
    double decay = rng.Uniform(0.75, 0.95);
    double h = height;
    for (size_t i = start; i < n && h > 0.005; ++i, h *= decay) {
      burst[i] += h;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    drift = opts.drift_smoothness * drift + rng.Gaussian(0.0, drift_sd);
    double cyc = opts.long_amplitude *
                 std::sin(kTwoPi * static_cast<double>(i) / period_steps);
    double val = opts.base_utilization + cyc + drift + burst[i] +
                 rng.Gaussian(0.0, 0.004);
    v[i] = Clamp(val, 0.0, 1.0);
  }
  return ts::Series(0, opts.interval_seconds, std::move(v), "alibaba_disk");
}

ts::Series GeneratePeriodic(const PeriodicOptions& opts) {
  Rng rng(opts.seed);
  size_t n = opts.periods * opts.steps_per_period;
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    double phase =
        kTwoPi * static_cast<double>(i) / static_cast<double>(opts.steps_per_period);
    v[i] = std::max(0.0, opts.base + opts.amplitude * std::sin(phase) +
                             rng.Gaussian(0.0, opts.noise_sd));
  }
  return ts::Series(0, 1800, std::move(v), "periodic");
}

ts::Series GenerateComplex(const ComplexOptions& opts) {
  Rng rng(opts.seed);
  size_t n = opts.days * opts.steps_per_day;
  // Holiday calendar drawn up front.
  std::vector<bool> holiday(opts.days, false);
  for (size_t d = 0; d < opts.days; ++d) holiday[d] = rng.Bernoulli(opts.holiday_prob);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    size_t day = i / opts.steps_per_day;
    double day_frac = static_cast<double>(i % opts.steps_per_day) /
                      static_cast<double>(opts.steps_per_day);
    double trend = opts.trend_per_day * static_cast<double>(i) /
                   static_cast<double>(opts.steps_per_day);
    double season = opts.season_amplitude * std::sin(kTwoPi * (day_frac - 0.3));
    double weekday = (day % 7 < 5) ? opts.weekday_factor : 1.0;
    double hol = holiday[day] ? opts.holiday_factor : 1.0;
    double val = (opts.base + trend + season) * weekday * hol +
                 rng.Gaussian(0.0, opts.noise_sd);
    v[i] = std::max(0.0, val);
  }
  return ts::Series(0, 1800, std::move(v), "complex");
}

std::vector<ts::Series> GenerateWarpedFamily(const WarpedFamilyOptions& opts) {
  Rng rng(opts.seed);
  std::vector<ts::Series> out;
  out.reserve(opts.members);
  for (size_t m = 0; m < opts.members; ++m) {
    double shift = rng.Uniform(-opts.max_shift, opts.max_shift);
    double amp = rng.Uniform(opts.amp_low, opts.amp_high);
    std::vector<double> v(opts.length);
    for (size_t i = 0; i < opts.length; ++i) {
      double x = (static_cast<double>(i) - shift) / opts.period;
      v[i] = amp * std::sin(kTwoPi * x + opts.phase) +
             rng.Gaussian(0.0, opts.noise_sd);
    }
    out.emplace_back(0, 600, std::move(v),
                     "family_" + std::to_string(opts.seed) + "_" +
                         std::to_string(m));
  }
  return out;
}

}  // namespace dbaugur::workloads

// Synthetic workload generators standing in for the paper's proprietary
// datasets (see DESIGN.md §3). Each generator reproduces the published
// *shape* properties that the evaluation depends on:
//   * BusTracker: per-minute query counts, rough one-day cycle, weekday
//     modulation, Poisson noise, sudden crests and troughs (Fig. 2a);
//   * Alibaba cluster disk utilization: long and less-obvious period, good
//     local linearity, many bursts from complex queries (Fig. 2b, §VI-B);
//   * Periodic / Complex: the two synthetic workloads of the migration case
//     study (Fig. 9) — clean cycles vs trend + white noise + seasonal +
//     holiday + weekday factors.
// All generators are deterministic in their seed.

#pragma once

#include <cstdint>

#include "ts/series.h"

namespace dbaugur::workloads {

/// BusTracker-like query arrival counts.
struct BusTrackerOptions {
  size_t days = 28;
  int64_t interval_seconds = 60;   ///< Real trace records per-minute counts.
  double base_rate = 60.0;         ///< Mean off-peak queries per interval.
  double daily_amplitude = 2.0;    ///< Peak-hour multiplier on top of base.
  double weekend_factor = 0.55;    ///< Traffic scaling on Sat/Sun.
  double burst_rate_per_day = 3.0; ///< Expected crests/troughs per day.
  double burst_magnitude = 2.5;    ///< Multiplier during a crest.
  double trough_magnitude = 0.25;  ///< Multiplier during a trough.
  uint64_t seed = 1;
};
ts::Series GenerateBusTracker(const BusTrackerOptions& opts);

/// Alibaba-cluster-like disk utilization ratios in [0, 1].
struct AlibabaOptions {
  size_t days = 6;
  int64_t interval_seconds = 300;
  double base_utilization = 0.45;
  double long_period_hours = 57.0;  ///< Longer, less-obvious cycle.
  double long_amplitude = 0.08;
  double drift_smoothness = 0.97;   ///< AR(1) coefficient of the local drift
                                    ///< (closer to 1 => better local linearity).
  double burst_rate_per_day = 10.0; ///< Heavy bursts from complex queries.
  double burst_height = 0.3;
  uint64_t seed = 2;
};
ts::Series GenerateAlibabaDisk(const AlibabaOptions& opts);

/// Clean periodic workload (Fig. 9a).
struct PeriodicOptions {
  size_t periods = 30;
  size_t steps_per_period = 48;
  double base = 100.0;
  double amplitude = 60.0;
  double noise_sd = 2.0;
  uint64_t seed = 3;
};
ts::Series GeneratePeriodic(const PeriodicOptions& opts);

/// Complex workload: linear trend + white noise + seasonal + holiday +
/// weekday factors (Fig. 9b).
struct ComplexOptions {
  size_t days = 30;
  size_t steps_per_day = 48;
  double base = 100.0;
  double trend_per_day = 1.5;
  double season_amplitude = 40.0;
  double weekday_factor = 1.25;    ///< Mon-Fri multiplier.
  double holiday_prob = 0.07;      ///< Chance a day is a holiday.
  double holiday_factor = 0.4;     ///< Traffic multiplier on holidays.
  double noise_sd = 6.0;
  uint64_t seed = 4;
};
ts::Series GenerateComplex(const ComplexOptions& opts);

/// A family of traces that share one latent pattern but differ by time
/// shift, amplitude scaling, and noise — the regime where DTW clustering
/// must beat lock-step distances (paper §IV-B). Used by tests and the
/// clustering ablation bench.
struct WarpedFamilyOptions {
  size_t members = 10;
  size_t length = 96;
  double period = 32.0;
  double max_shift = 6.0;      ///< Uniform time shift in steps.
  double amp_low = 0.8;
  double amp_high = 1.2;
  double noise_sd = 0.05;
  double phase = 0.0;          ///< Distinguishes different families.
  uint64_t seed = 5;
};
std::vector<ts::Series> GenerateWarpedFamily(const WarpedFamilyOptions& opts);

}  // namespace dbaugur::workloads

#include "workloads/query_log.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dbaugur::workloads {

std::vector<trace::LogEntry> GenerateQueryLog(
    const std::vector<QueryTemplateSpec>& templates,
    const QueryLogOptions& opts) {
  DBAUGUR_CHECK(opts.interval_seconds > 0,
                "GenerateQueryLog interval_seconds must be positive, got ",
                opts.interval_seconds);
  Rng rng(opts.seed);
  std::vector<trace::LogEntry> out;
  int64_t steps_per_day = 86400 / opts.interval_seconds;
  for (size_t day = 0; day < opts.days; ++day) {
    for (int64_t step = 0; step < steps_per_day; ++step) {
      double day_frac =
          static_cast<double>(step) / static_cast<double>(steps_per_day);
      int64_t base_ts = (static_cast<int64_t>(day) * steps_per_day + step) *
                        opts.interval_seconds;
      for (const auto& spec : templates) {
        int64_t count = rng.Poisson(spec.rate(day_frac, day));
        for (int64_t q = 0; q < count; ++q) {
          int64_t offset = rng.UniformInt(0, opts.interval_seconds - 1);
          out.push_back({base_ts + offset, spec.make_sql(rng)});
        }
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const trace::LogEntry& a, const trace::LogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

namespace {
// Gaussian bump centered at `center` (day fraction) with width `sd`.
double Bump(double day_frac, double center, double sd) {
  double d = day_frac - center;
  // Wrap around midnight.
  if (d > 0.5) d -= 1.0;
  if (d < -0.5) d += 1.0;
  return std::exp(-d * d / (2.0 * sd * sd));
}
}  // namespace

std::vector<QueryTemplateSpec> BusTrackerTemplates() {
  std::vector<QueryTemplateSpec> specs;
  // 1. Live position lookups: commute peaks (morning + evening).
  specs.push_back(
      {"positions_by_route",
       [](Rng& rng) {
         return "SELECT * FROM positions WHERE route_id = " +
                std::to_string(rng.UniformInt(1, 400));
       },
       [](double f, size_t) {
         return 4.0 + 60.0 * Bump(f, 0.33, 0.05) + 50.0 * Bump(f, 0.71, 0.06);
       }});
  // 2. Schedule lookups: daytime plateau.
  specs.push_back(
      {"schedule_by_stop",
       [](Rng& rng) {
         return "SELECT * FROM schedules WHERE stop_id = " +
                std::to_string(rng.UniformInt(1, 5000)) + " AND arrival > " +
                std::to_string(rng.UniformInt(0, 86400));
       },
       [](double f, size_t) { return f > 0.25 && f < 0.9 ? 25.0 : 3.0; }});
  // 3. Ticket price scans: evening-heavy (the planetarium-style pairing).
  specs.push_back(
      {"ticket_prices",
       [](Rng& rng) {
         return "SELECT price, seats FROM tickets WHERE trip_id = " +
                std::to_string(rng.UniformInt(1, 2000));
       },
       [](double f, size_t) { return 2.0 + 55.0 * Bump(f, 0.75, 0.07); }});
  // 4. Ticket availability: tracks prices with a small lag (same cluster).
  specs.push_back(
      {"ticket_seats_left",
       [](Rng& rng) {
         return "SELECT seats FROM tickets WHERE trip_id = " +
                std::to_string(rng.UniformInt(1, 2000)) + " AND seats > 0";
       },
       [](double f, size_t) { return 2.0 + 50.0 * Bump(f, 0.77, 0.07); }});
  // 5. Position updates from buses: constant background writes.
  specs.push_back(
      {"position_update",
       [](Rng& rng) {
         return "UPDATE positions SET lat = " +
                std::to_string(rng.Uniform(40.0, 41.0)) + ", lon = " +
                std::to_string(rng.Uniform(-80.1, -79.8)) +
                " WHERE bus_id = " + std::to_string(rng.UniformInt(1, 1200));
       },
       [](double, size_t) { return 12.0; }});
  // 6. Departure range scans: midday analytical queries.
  specs.push_back(
      {"departures_range",
       [](Rng& rng) {
         int64_t start = rng.UniformInt(0, 80000);
         return "SELECT * FROM trips WHERE depart_time > " +
                std::to_string(start) + " AND depart_time < " +
                std::to_string(start + 3600);
       },
       [](double f, size_t) { return 1.0 + 18.0 * Bump(f, 0.5, 0.1); }});
  return specs;
}

}  // namespace dbaugur::workloads

// Synthetic query-log generation: emits timestamped SQL statements whose
// per-template arrival rates follow configurable time-of-day profiles. This
// feeds the end-to-end pipeline (SQL2Template -> clustering -> forecasting)
// and the index-selection case study, where the query *mix* shifts over the
// day so the optimal index set changes.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/extractor.h"

namespace dbaugur::workloads {

/// One query template's behaviour in the generated log.
struct QueryTemplateSpec {
  std::string name;
  /// Produces one concrete SQL statement (with fresh literal values).
  std::function<std::string(Rng&)> make_sql;
  /// Expected statements per interval as a function of the fraction of the
  /// day [0,1) and the day index.
  std::function<double(double day_frac, size_t day)> rate;
};

/// Log-generation configuration.
struct QueryLogOptions {
  size_t days = 2;
  int64_t interval_seconds = 600;
  uint64_t seed = 7;
};

/// Generates a time-ordered log: per interval, each template contributes
/// Poisson(rate) statements at uniform offsets within the interval.
std::vector<trace::LogEntry> GenerateQueryLog(
    const std::vector<QueryTemplateSpec>& templates,
    const QueryLogOptions& opts);

/// The canned BusTracker-application template set used by the examples and
/// the Fig. 8 case study: five templates over a transit schema whose hot set
/// shifts from route lookups (morning commute) to ticket-price scans
/// (evening).
std::vector<QueryTemplateSpec> BusTrackerTemplates();

}  // namespace dbaugur::workloads

// Tests for trace analysis utilities and hyper-parameter grid search.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "models/grid_search.h"
#include "ts/analysis.h"

namespace dbaugur {
namespace {

std::vector<double> Sine(size_t n, double period, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2 * M_PI * static_cast<double>(i) / period) +
           rng.Gaussian(0, noise);
  }
  return v;
}

TEST(AutocorrelationTest, KnownValues) {
  // Alternating series: AC(1) ~ -1, AC(2) ~ 1.
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_DOUBLE_EQ(ts::Autocorrelation(v, 0), 1.0);
  EXPECT_LT(ts::Autocorrelation(v, 1), -0.9);
  EXPECT_GT(ts::Autocorrelation(v, 2), 0.9);
}

TEST(AutocorrelationTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ts::Autocorrelation({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(ts::Autocorrelation({1.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(ts::Autocorrelation({5, 5, 5, 5}, 1), 0.0);  // constant
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ts::Autocorrelation(v, 5), 0.0);  // lag beyond size
}

TEST(AutocorrelationTest, FunctionMatchesPointwise) {
  auto v = Sine(200, 24, 0.1, 3);
  auto acf = ts::AutocorrelationFunction(v, 30);
  ASSERT_EQ(acf.size(), 30u);
  for (size_t lag = 1; lag <= 30; ++lag) {
    EXPECT_NEAR(acf[lag - 1], ts::Autocorrelation(v, lag), 1e-12);
  }
}

TEST(DetectPeriodTest, FindsSinePeriod) {
  auto v = Sine(400, 24, 0.05, 5);
  auto p = ts::DetectPeriod(v, 4, 60);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(static_cast<double>(p->period), 24.0, 1.0);
  EXPECT_GT(p->strength, 0.8);
}

TEST(DetectPeriodTest, WhiteNoiseHasNoPeriod) {
  Rng rng(7);
  std::vector<double> v(400);
  for (double& x : v) x = rng.Gaussian();
  auto p = ts::DetectPeriod(v, 4, 60, 0.3);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(DetectPeriodTest, Validation) {
  auto v = Sine(100, 10, 0.0, 9);
  EXPECT_FALSE(ts::DetectPeriod(v, 0, 20).ok());
  EXPECT_FALSE(ts::DetectPeriod(v, 30, 20).ok());
  EXPECT_FALSE(ts::DetectPeriod(v, 4, 99).ok());
}

TEST(RollingTest, MeanAndStd) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  auto mean = ts::RollingMean(v, 1);
  EXPECT_DOUBLE_EQ(mean[0], 1.5);  // edge uses available samples
  EXPECT_DOUBLE_EQ(mean[2], 3.0);
  EXPECT_DOUBLE_EQ(mean[4], 4.5);
  auto sd = ts::RollingStdDev(v, 1);
  EXPECT_NEAR(sd[2], std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(RollingTest, EmptyInput) {
  EXPECT_TRUE(ts::RollingMean({}, 3).empty());
  EXPECT_TRUE(ts::RollingStdDev({}, 3).empty());
}

TEST(DetectBurstsTest, FlagsInjectedSpike) {
  auto v = Sine(300, 24, 0.05, 11);
  v[150] += 10.0;
  auto bursts = ts::DetectBursts(v, 12, 4.0);
  bool found = false;
  for (size_t i : bursts) {
    if (i == 150) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_LT(bursts.size(), 10u);  // not flagging the whole series
}

TEST(GridSearchTest, PicksBetterWindowForSine) {
  // With a period-24 sine and horizon 1, window 24 should beat window 2.
  auto v = Sine(600, 24, 0.05, 13);
  models::ForecasterOptions base;
  base.horizon = 1;
  models::ParameterGrid grid;
  grid.windows = {2, 24};
  auto result = models::GridSearch("LR", v, base, grid);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.window, 24u);
  ASSERT_EQ(result->evaluated.size(), 2u);
  EXPECT_LE(result->evaluated[0].validation_mse,
            result->evaluated[1].validation_mse);
}

TEST(GridSearchTest, SweepsMultipleDimensions) {
  auto v = Sine(400, 16, 0.1, 15);
  models::ForecasterOptions base;
  base.horizon = 1;
  base.window = 16;
  models::ParameterGrid grid;
  grid.epochs = {2, 5};
  grid.learning_rates = {1e-3, 1e-2};
  auto result = models::GridSearch("MLP", v, base, grid);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->evaluated.size(), 4u);
  EXPECT_EQ(result->best.window, 16u);  // untouched dimension preserved
  EXPECT_DOUBLE_EQ(result->best_mse, result->evaluated[0].validation_mse);
}

TEST(GridSearchTest, InfeasiblePointsSkipped) {
  auto v = Sine(120, 16, 0.1, 17);
  models::ForecasterOptions base;
  base.horizon = 1;
  models::ParameterGrid grid;
  grid.windows = {8, 5000};  // second is impossible for 120 samples
  auto result = models::GridSearch("LR", v, base, grid);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->evaluated.size(), 1u);
  EXPECT_EQ(result->best.window, 8u);
}

TEST(GridSearchTest, Validation) {
  auto v = Sine(200, 16, 0.1, 19);
  models::ForecasterOptions base;
  models::ParameterGrid grid;
  models::GridSearchOptions bad;
  bad.validation_fraction = 0.0;
  EXPECT_FALSE(models::GridSearch("LR", v, base, grid, bad).ok());
  // Unknown model propagates NotFound.
  auto unknown = models::GridSearch("Prophet", v, base, grid);
  EXPECT_FALSE(unknown.ok());
  // All-infeasible grid fails cleanly.
  models::ParameterGrid impossible;
  impossible.windows = {100000};
  EXPECT_FALSE(models::GridSearch("LR", v, base, impossible).ok());
}

}  // namespace
}  // namespace dbaugur

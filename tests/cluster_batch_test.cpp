// Equivalence and determinism tests pinning the Descender batch fast path:
// batch AddTraces must reproduce the sequential AddTrace loop exactly
// (labels, core flags, cluster counts, TopK) across thread counts and in
// both exact-cascade and Ball-Tree modes, while performing strictly fewer
// full DTW computations than the sequential path.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "chaos/partition.h"
#include "cluster/descender.h"
#include "common/thread_pool.h"
#include "workloads/generators.h"

namespace dbaugur::cluster {
namespace {

std::vector<ts::Series> SeededWorkload(size_t families, size_t members,
                                       uint64_t seed0) {
  std::vector<ts::Series> traces;
  for (size_t fam = 0; fam < families; ++fam) {
    workloads::WarpedFamilyOptions opts;
    opts.members = members;
    opts.max_shift = 2.0;
    opts.phase = static_cast<double>(fam) * 2.0 * M_PI /
                 static_cast<double>(families);
    opts.seed = seed0 + fam;
    for (auto& s : workloads::GenerateWarpedFamily(opts)) {
      traces.push_back(std::move(s));
    }
  }
  return traces;
}

DescenderOptions BaseOpts(size_t threads = 1) {
  DescenderOptions opts;
  opts.radius = 3.0;
  opts.min_size = 3;
  opts.dtw.window = 4;
  opts.threads = threads;
  return opts;
}

// Strict equality, not co-membership up to permutation: the batch path
// promises the *same* labels because adjacency lists come out identical.
void ExpectIdentical(const Descender& a, const Descender& b) {
  ASSERT_EQ(a.trace_count(), b.trace_count());
  for (size_t i = 0; i < a.trace_count(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "trace " << i;
    EXPECT_EQ(a.is_core(i), b.is_core(i)) << "trace " << i;
  }
  EXPECT_EQ(a.cluster_count(), b.cluster_count());
  EXPECT_EQ(a.density_cluster_count(), b.density_cluster_count());
  auto top_a = a.TopKClusters(5);
  auto top_b = b.TopKClusters(5);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (size_t k = 0; k < top_a.size(); ++k) {
    EXPECT_EQ(top_a[k].id, top_b[k].id) << "rank " << k;
    EXPECT_EQ(top_a[k].members, top_b[k].members) << "rank " << k;
    EXPECT_DOUBLE_EQ(top_a[k].volume, top_b[k].volume) << "rank " << k;
    EXPECT_EQ(top_a[k].singleton_outlier, top_b[k].singleton_outlier);
  }
}

TEST(ClusterBatchTest, BatchMatchesSequentialExactMode) {
  auto traces = SeededWorkload(4, 8, 500);
  Descender seq(BaseOpts());
  for (const auto& s : traces) ASSERT_TRUE(seq.AddTrace(s).ok());
  Descender batch(BaseOpts());
  ASSERT_TRUE(batch.AddTraces(traces).ok());
  ExpectIdentical(seq, batch);
}

TEST(ClusterBatchTest, ThreadCountDoesNotChangeResults) {
  auto traces = SeededWorkload(5, 8, 600);
  Descender one(BaseOpts(1));
  ASSERT_TRUE(one.AddTraces(traces).ok());
  Descender four(BaseOpts(4));
  ASSERT_TRUE(four.AddTraces(traces).ok());
  ExpectIdentical(one, four);
  // The telemetry is deterministic too: the same pairs get the same bounds
  // regardless of which lane evaluated them.
  EXPECT_EQ(one.pruning_stats().full_dtw, four.pruning_stats().full_dtw);
  EXPECT_EQ(one.pruning_stats().kim_rejections,
            four.pruning_stats().kim_rejections);
  EXPECT_EQ(one.pruning_stats().keogh_rejections,
            four.pruning_stats().keogh_rejections);
  EXPECT_EQ(one.distance_evals(), four.distance_evals());
}

TEST(ClusterBatchTest, BatchDoesStrictlyFewerFullDtw) {
  auto traces = SeededWorkload(4, 10, 700);
  Descender seq(BaseOpts());
  for (const auto& s : traces) ASSERT_TRUE(seq.AddTrace(s).ok());
  Descender batch(BaseOpts());
  ASSERT_TRUE(batch.AddTraces(traces).ok());
  ExpectIdentical(seq, batch);
  // Same candidate pairs considered...
  EXPECT_EQ(batch.distance_evals(), seq.distance_evals());
  // ...but the symmetric two-sided LB_Keogh must reject strictly more of
  // them before the full DTW tier.
  EXPECT_LT(batch.pruning_stats().full_dtw, seq.pruning_stats().full_dtw);
  EXPECT_GT(batch.pruning_stats().keogh_rejections,
            seq.pruning_stats().keogh_rejections);
}

TEST(ClusterBatchTest, SecondBatchOnNonEmptyDescenderMatchesSequential) {
  auto traces = SeededWorkload(4, 6, 800);
  Descender seq(BaseOpts());
  for (const auto& s : traces) ASSERT_TRUE(seq.AddTrace(s).ok());
  // Split across two batches: exercises old-vs-new cross pairs in the sweep.
  std::vector<ts::Series> first(traces.begin(), traces.begin() + 10);
  std::vector<ts::Series> second(traces.begin() + 10, traces.end());
  Descender batch(BaseOpts(2));
  ASSERT_TRUE(batch.AddTraces(first).ok());
  ASSERT_TRUE(batch.AddTraces(second).ok());
  ExpectIdentical(seq, batch);
}

TEST(ClusterBatchTest, BallTreeBatchMatchesSequential) {
  // 16 traces sit inside the default pending budget, so both paths resolve
  // every pair exactly and must agree to the label.
  auto traces = SeededWorkload(2, 8, 900);
  DescenderOptions opts = BaseOpts();
  opts.search = NeighborSearch::kBallTree;
  Descender seq(opts);
  for (const auto& s : traces) ASSERT_TRUE(seq.AddTrace(s).ok());
  Descender batch(opts);
  ASSERT_TRUE(batch.AddTraces(traces).ok());
  ExpectIdentical(seq, batch);
}

TEST(ClusterBatchTest, BallTreeRebuildThresholdPreservesFamilies) {
  // A tiny pending budget forces mid-stream tree rebuilds; on well-separated
  // families the heuristic index must still recover the exact partition.
  auto traces = SeededWorkload(2, 10, 1000);
  DescenderOptions tree_opts = BaseOpts();
  tree_opts.search = NeighborSearch::kBallTree;
  tree_opts.ball_tree_rebuild_pending = 4;
  Descender tree(tree_opts);
  for (const auto& s : traces) ASSERT_TRUE(tree.AddTrace(s).ok());
  Descender exact(BaseOpts());
  ASSERT_TRUE(exact.AddTraces(traces).ok());
  EXPECT_EQ(tree.density_cluster_count(), exact.density_cluster_count());
  // Same partition up to label permutation (the heuristic index may visit
  // neighbors in a different order than the exact scan).
  std::vector<int> tree_labels(traces.size());
  std::vector<int> exact_labels(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    tree_labels[i] = tree.label(i);
    exact_labels[i] = exact.label(i);
  }
  std::string mismatch;
  EXPECT_TRUE(chaos::PartitionsEquivalent(tree_labels, exact_labels, &mismatch))
      << mismatch;
  // The index actually pruned something, i.e. this test exercises the tree.
  EXPECT_GT(tree.pruning_stats().tree_rejections, 0);
}

TEST(ClusterBatchTest, EmptyBatchIsNoOp) {
  Descender desc(BaseOpts());
  EXPECT_TRUE(desc.AddTraces({}).ok());
  EXPECT_EQ(desc.trace_count(), 0u);
  EXPECT_TRUE(desc.AddTrace(ts::Series(0, 60, {1, 2, 3})).ok());
  EXPECT_TRUE(desc.AddTraces({}).ok());
  EXPECT_EQ(desc.trace_count(), 1u);
}

TEST(ClusterBatchTest, InvalidBatchIsAtomic) {
  Descender desc(BaseOpts());
  ASSERT_TRUE(desc.AddTrace(ts::Series(0, 60, {1, 2, 3})).ok());
  std::vector<ts::Series> mismatched;
  mismatched.push_back(ts::Series(0, 60, {4, 5, 6}));
  mismatched.push_back(ts::Series(0, 60, {7, 8}));
  EXPECT_FALSE(desc.AddTraces(std::move(mismatched)).ok());
  EXPECT_EQ(desc.trace_count(), 1u);  // nothing from the bad batch landed
  std::vector<ts::Series> with_empty;
  with_empty.push_back(ts::Series(0, 60, {4, 5, 6}));
  with_empty.push_back(ts::Series(0, 60, {}));
  EXPECT_FALSE(desc.AddTraces(std::move(with_empty)).ok());
  EXPECT_EQ(desc.trace_count(), 1u);
  // The descender still works after a rejected batch.
  EXPECT_TRUE(desc.AddTrace(ts::Series(0, 60, {4, 5, 6})).ok());
  EXPECT_EQ(desc.trace_count(), 2u);
}

}  // namespace
}  // namespace dbaugur::cluster

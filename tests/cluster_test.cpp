// Tests for the Ball-Tree neighbor index and Descender clustering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/ball_tree.h"
#include "cluster/descender.h"
#include "common/rng.h"
#include "dtw/dtw.h"
#include "workloads/generators.h"

namespace dbaugur::cluster {
namespace {

std::vector<std::vector<double>> RandomPoints(size_t n, size_t dim,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (double& x : p) x = rng.Gaussian();
  }
  return pts;
}

std::vector<size_t> BruteRange(const std::vector<std::vector<double>>& pts,
                               const std::vector<double>& q, double r) {
  std::vector<size_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (EuclideanDistance(pts[i], q) <= r) out.push_back(i);
  }
  return out;
}

TEST(BallTreeTest, RangeQueryMatchesBruteForceEuclidean) {
  auto pts = RandomPoints(300, 8, 17);
  auto tree = BallTree::Build(pts, EuclideanDistance, {4});
  ASSERT_TRUE(tree.ok());
  Rng rng(18);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(8);
    for (double& x : q) x = rng.Gaussian();
    double r = rng.Uniform(0.5, 3.0);
    auto got = tree->RangeQuery(q, r);
    auto want = BruteRange(pts, q, r);
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(BallTreeTest, NearestMatchesBruteForce) {
  auto pts = RandomPoints(200, 5, 19);
  auto tree = BallTree::Build(pts, EuclideanDistance, {8});
  ASSERT_TRUE(tree.ok());
  Rng rng(20);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(5);
    for (double& x : q) x = rng.Gaussian();
    auto got = tree->Nearest(q);
    ASSERT_TRUE(got.ok());
    size_t best = 0;
    double bd = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      double d = EuclideanDistance(pts[i], q);
      if (d < bd) {
        bd = d;
        best = i;
      }
    }
    EXPECT_EQ(got->first, best);
    EXPECT_NEAR(got->second, bd, 1e-12);
  }
}

TEST(BallTreeTest, PruningActuallySkipsDistanceEvals) {
  auto pts = RandomPoints(2000, 4, 21);
  auto tree = BallTree::Build(pts, EuclideanDistance, {16});
  ASSERT_TRUE(tree.ok());
  std::vector<double> q(4, 0.0);
  tree->RangeQuery(q, 0.3);
  // Pruned search must touch far fewer points than brute force would.
  EXPECT_LT(tree->distance_evals(), 2000);
}

TEST(BallTreeTest, EmptyAndErrorCases) {
  auto empty = BallTree::Build({}, EuclideanDistance);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->RangeQuery({1.0}, 1.0).empty());
  EXPECT_FALSE(empty->Nearest({1.0}).ok());
  EXPECT_FALSE(BallTree::Build({{1.0}}, nullptr).ok());
  EXPECT_FALSE(BallTree::Build({{1.0}, {1.0, 2.0}}, EuclideanDistance).ok());
}

TEST(BallTreeTest, DuplicatePointsHandled) {
  std::vector<std::vector<double>> pts(50, std::vector<double>{1.0, 2.0});
  auto tree = BallTree::Build(pts, EuclideanDistance, {4});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->RangeQuery({1.0, 2.0}, 0.1).size(), 50u);
}

TEST(BallTreeTest, DtwRangeQueryRecallRegression) {
  // Seeded exact-vs-Ball-Tree RangeQuery comparison under the non-metric DTW
  // distance. The recall on this fixed workload is pinned so Ball-Tree
  // refactors cannot silently start dropping neighbors: any regression in
  // the pruning bound shows up as found < expected.
  std::vector<std::vector<double>> pts;
  for (int fam = 0; fam < 3; ++fam) {
    workloads::WarpedFamilyOptions opts;
    opts.members = 10;
    opts.max_shift = 2.0;
    opts.phase = fam * 2.0 * M_PI / 3.0;
    opts.seed = 150 + static_cast<uint64_t>(fam);
    for (auto& s : workloads::GenerateWarpedFamily(opts)) {
      pts.push_back(s.values());
    }
  }
  dtw::DtwOptions dopts{8};
  auto dist = [dopts](const std::vector<double>& a,
                      const std::vector<double>& b) {
    auto d = dtw::DtwDistance(a, b, dopts);
    return d.ok() ? *d : 1e300;
  };
  auto tree = BallTree::Build(pts, dist, {4});
  ASSERT_TRUE(tree.ok());
  size_t found = 0, expected = 0, false_positives = 0;
  for (size_t q = 0; q < pts.size(); ++q) {
    auto got = tree->RangeQuery(pts[q], 3.0);
    std::set<size_t> got_set(got.begin(), got.end());
    for (size_t i = 0; i < pts.size(); ++i) {
      bool truly_within = dist(pts[q], pts[i]) <= 3.0;
      if (truly_within) {
        ++expected;
        if (got_set.count(i)) ++found;
      } else if (got_set.count(i)) {
        ++false_positives;
      }
    }
  }
  // Leaves re-check the true distance, so the tree can never over-report.
  EXPECT_EQ(false_positives, 0u);
  // Non-trivial query load: every family member sees its whole family.
  EXPECT_GE(expected, 300u);
  // Pinned recall for this seed: the tree finds 345 of 358 true neighbors
  // (~96%) — DTW violates the triangle inequality, so the pruning bound is
  // heuristic and some misses are expected. A drop below the pinned floor
  // means a Ball-Tree change made the pruning lossier; improvements (up to
  // exact recall) are welcome and will still pass.
  EXPECT_EQ(expected, 358u);
  EXPECT_GE(found, 345u);
}

DescenderOptions MakeOpts(double radius, size_t min_size = 3,
                          int window = 8) {
  DescenderOptions opts;
  opts.radius = radius;
  opts.min_size = min_size;
  opts.dtw.window = window;
  return opts;
}

// Family options where intra-family shifts stay well inside the DTW band
// while anti-phase families remain far outside it. (With shifts comparable
// to the band, DBSCAN's density chaining can legitimately bridge anti-phase
// families through intermediate shifts — that is correct clustering
// behaviour, not what this test probes.)
workloads::WarpedFamilyOptions TightFamily(double phase, uint64_t seed) {
  workloads::WarpedFamilyOptions fam;
  fam.members = 8;
  fam.max_shift = 2.0;
  fam.phase = phase;
  fam.seed = seed;
  return fam;
}

TEST(DescenderTest, SeparatesTwoWarpedFamilies) {
  auto family_a = workloads::GenerateWarpedFamily(TightFamily(0.0, 31));
  auto family_b = workloads::GenerateWarpedFamily(TightFamily(M_PI, 32));

  Descender desc(MakeOpts(3.0, 3, 4));
  std::vector<ts::Series> all = family_a;
  for (auto& s : family_b) all.push_back(s);
  ASSERT_TRUE(desc.AddTraces(all).ok());

  // All of family A share one label, all of family B another, distinct.
  int label_a = desc.label(0);
  for (size_t i = 1; i < family_a.size(); ++i) {
    EXPECT_EQ(desc.label(i), label_a) << i;
  }
  int label_b = desc.label(family_a.size());
  EXPECT_NE(label_a, label_b);
  for (size_t i = family_a.size() + 1; i < all.size(); ++i) {
    EXPECT_EQ(desc.label(i), label_b) << i;
  }
  EXPECT_EQ(desc.density_cluster_count(), 2u);
}

TEST(DescenderTest, OutlierBecomesSingletonCluster) {
  workloads::WarpedFamilyOptions fam;
  fam.members = 6;
  fam.seed = 33;
  Descender desc(MakeOpts(4.0));
  ASSERT_TRUE(desc.AddTraces(workloads::GenerateWarpedFamily(fam)).ok());
  // An outlier trace: white noise, z-normalized it still won't warp onto the
  // sine family.
  Rng rng(34);
  std::vector<double> noise(96);
  size_t k = 0;
  for (double& x : noise) x = (k++ % 7 == 0) ? rng.Uniform(-9, 9) : rng.Gaussian(0, 3.0);
  auto idx = desc.AddTrace(ts::Series(0, 600, noise, "outlier"));
  ASSERT_TRUE(idx.ok());
  EXPECT_FALSE(desc.is_core(*idx));
  // It has its own singleton cluster.
  int label = desc.label(*idx);
  size_t members = 0;
  for (size_t i = 0; i < desc.trace_count(); ++i) {
    if (desc.label(i) == label) ++members;
  }
  EXPECT_EQ(members, 1u);
  EXPECT_EQ(desc.density_cluster_count(), 1u);
  EXPECT_EQ(desc.cluster_count(), 2u);
}

TEST(DescenderTest, OnlineInsertMatchesBatchClustering) {
  workloads::WarpedFamilyOptions fam;
  fam.members = 5;
  fam.seed = 35;
  auto fa = workloads::GenerateWarpedFamily(fam);
  fam.phase = M_PI;
  fam.seed = 36;
  auto fb = workloads::GenerateWarpedFamily(fam);
  std::vector<ts::Series> all = fa;
  for (auto& s : fb) all.push_back(s);

  Descender batch(MakeOpts(4.0));
  ASSERT_TRUE(batch.AddTraces(all).ok());
  Descender online(MakeOpts(4.0));
  for (const auto& s : all) ASSERT_TRUE(online.AddTrace(s).ok());

  // Same partition (labels may be permuted; compare co-membership).
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_EQ(batch.label(i) == batch.label(j),
                online.label(i) == online.label(j))
          << i << "," << j;
    }
  }
}

TEST(DescenderTest, TopKOrderedByVolume) {
  // Two families with different offsets -> different volumes (distance uses
  // z-normalized shapes, so the offset doesn't affect clustering).
  workloads::WarpedFamilyOptions small = TightFamily(0.0, 37);
  small.members = 4;
  auto fa = workloads::GenerateWarpedFamily(small);
  workloads::WarpedFamilyOptions big = TightFamily(M_PI, 38);
  big.members = 4;
  auto fb = workloads::GenerateWarpedFamily(big);
  for (auto& s : fa) {
    for (auto& v : s.mutable_values()) v += 2.0;
  }
  for (auto& s : fb) {
    for (auto& v : s.mutable_values()) v += 20.0;
  }
  Descender desc(MakeOpts(3.0, 3, 4));
  ASSERT_TRUE(desc.AddTraces(fa).ok());
  ASSERT_TRUE(desc.AddTraces(fb).ok());
  auto top = desc.TopKClusters(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GT(top[0].volume, top[1].volume);
  EXPECT_EQ(top[0].members.size(), 4u);
}

TEST(DescenderTest, RepresentativeIsMemberAverage) {
  Descender desc(MakeOpts(100.0, 2));
  ASSERT_TRUE(desc.AddTrace(ts::Series(0, 60, {1, 2, 3})).ok());
  ASSERT_TRUE(desc.AddTrace(ts::Series(0, 60, {3, 4, 5})).ok());
  ASSERT_EQ(desc.cluster_count(), 1u);
  auto rep = desc.ClusterRepresentative(desc.label(0));
  ASSERT_TRUE(rep.ok());
  EXPECT_DOUBLE_EQ((*rep)[0], 2.0);
  EXPECT_DOUBLE_EQ((*rep)[1], 3.0);
  EXPECT_DOUBLE_EQ((*rep)[2], 4.0);
}

TEST(DescenderTest, TraceProportions) {
  Descender desc(MakeOpts(100.0, 2));
  ASSERT_TRUE(desc.AddTrace(ts::Series(0, 60, {1, 1, 1})).ok());  // volume 3
  ASSERT_TRUE(desc.AddTrace(ts::Series(0, 60, {3, 3, 3})).ok());  // volume 9
  auto p0 = desc.TraceProportion(0);
  auto p1 = desc.TraceProportion(1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_DOUBLE_EQ(*p0, 0.25);
  EXPECT_DOUBLE_EQ(*p1, 0.75);
  EXPECT_FALSE(desc.TraceProportion(5).ok());
}

TEST(DescenderTest, InputValidation) {
  Descender desc(MakeOpts(1.0));
  EXPECT_FALSE(desc.AddTrace(ts::Series(0, 60, {})).ok());
  ASSERT_TRUE(desc.AddTrace(ts::Series(0, 60, {1, 2, 3})).ok());
  EXPECT_FALSE(desc.AddTrace(ts::Series(0, 60, {1, 2})).ok());
  EXPECT_FALSE(desc.ClusterRepresentative(99).ok());
}

TEST(DescenderTest, BallTreeModeFindsSameFamilies) {
  workloads::WarpedFamilyOptions fam;
  fam.members = 6;
  fam.seed = 39;
  auto fa = workloads::GenerateWarpedFamily(fam);
  fam.phase = M_PI;
  fam.seed = 40;
  auto fb = workloads::GenerateWarpedFamily(fam);
  std::vector<ts::Series> all = fa;
  for (auto& s : fb) all.push_back(s);
  // Ground truth from the exact cascade scan; the Ball-Tree heuristic must
  // recover the same partition on this workload. A tiny pending budget
  // forces mid-stream rebuilds so the tree actually answers queries instead
  // of everything resolving through the exact pending-buffer scan.
  Descender exact(MakeOpts(2.0));
  ASSERT_TRUE(exact.AddTraces(all).ok());
  DescenderOptions topts = MakeOpts(2.0);
  topts.search = NeighborSearch::kBallTree;
  topts.ball_tree_rebuild_pending = 4;
  Descender tree(topts);
  for (const auto& s : all) ASSERT_TRUE(tree.AddTrace(s).ok());
  EXPECT_EQ(tree.density_cluster_count(), exact.density_cluster_count());
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_EQ(tree.label(i) == tree.label(j), exact.label(i) == exact.label(j))
          << i << "," << j;
    }
  }
  EXPECT_GT(tree.pruning_stats().tree_rejections, 0);
}

}  // namespace
}  // namespace dbaugur::cluster

// Unit tests for src/common: Status, Rng, math utilities, table printer,
// thread pool, and the annotated Mutex/CondVar wrappers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace dbaugur {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(Mean(xs), 5.0, 0.1);
  EXPECT_NEAR(StdDev(xs), 2.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.1);
}

TEST(RngTest, PoissonNonPositiveRateIsZero) {
  Rng rng(2);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-3.0), 0);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  auto p = rng.Permutation(50);
  std::set<size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(6);
  auto s = rng.SampleWithoutReplacement(100, 10);
  std::set<size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(MathTest, MeanVarianceStd) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(MathTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(MathTest, SigmoidStableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(MathTest, SolveLinearSystem) {
  // [2 1; 1 3] x = [5; 10] => x = [1, 3]? check: 2+3=5 yes, 1+9=10 yes.
  auto x = SolveLinearSystem({2, 1, 1, 3}, {5, 10}, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(MathTest, SolveSingularFails) {
  auto x = SolveLinearSystem({1, 2, 2, 4}, {3, 6}, 2);
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInternal);
}

TEST(MathTest, SolveDimensionMismatch) {
  auto x = SolveLinearSystem({1, 2, 3}, {1, 2}, 2);
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(MathTest, LeastSquaresRecoversLine) {
  // y = 3x + 2 with x in {0..9}; columns: [x, 1].
  std::vector<double> X, y;
  for (int i = 0; i < 10; ++i) {
    X.push_back(i);
    X.push_back(1.0);
    y.push_back(3.0 * i + 2.0);
  }
  auto beta = LeastSquares(X, y, 10, 2);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-6);
  EXPECT_NEAR((*beta)[1], 2.0, 1e-5);
}

TEST(MathTest, LeastSquaresUnderdetermined) {
  auto beta = LeastSquares({1, 2}, {1}, 1, 2);
  EXPECT_FALSE(beta.ok());
}

TEST(MathTest, SoftmaxSumsToOne) {
  auto s = Softmax({1.0, 2.0, 3.0});
  double sum = s[0] + s[1] + s[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(s[2], s[1]);
  EXPECT_GT(s[1], s[0]);
}

TEST(MathTest, SoftmaxStableForLargeInputs) {
  auto s = Softmax({1000.0, 1000.0});
  EXPECT_NEAR(s[0], 0.5, 1e-12);
  EXPECT_NEAR(s[1], 0.5, 1e-12);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"model", "mse"});
  t.AddRow({"LR", "0.5"});
  t.AddRow({"WFGAN", "0.25"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("WFGAN"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 3), "2.000");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NO_THROW(t.ToString());
}

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t grain : {size_t{1}, size_t{7}, size_t{1000}}) {
      constexpr size_t kN = 257;  // prime-ish: exercises a ragged last chunk
      std::vector<std::atomic<int>> hits(kN);
      ThreadPool pool(threads);
      pool.ParallelFor(kN, grain, [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, kN);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads=" << threads
                                     << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroItemsNeverInvokesBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 4, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

// Sink capturing complete lines; the logging layer calls it under its mutex,
// but the capture keeps its own lock so the test doesn't rely on that.
struct LineCapture {
  Mutex mu;
  std::vector<std::string> lines;
  static void Sink(LogLevel, const std::string& line, void* user) {
    auto* self = static_cast<LineCapture*>(user);
    MutexLock lock(&self->mu);
    self->lines.push_back(line);
  }
};

TEST(LoggingTest, ConcurrentWritersNeverInterleaveWithinALine) {
  LineCapture capture;
  SetLogSink(&LineCapture::Sink, &capture);
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        DBAUGUR_INFO("writer " << t << " message " << i << " payload "
                               << "xxxxxxxxxxxxxxxx");
      }
    });
  }
  for (auto& w : writers) w.join();
  SetLogLevel(prev);
  SetLogSink(nullptr, nullptr);

  ASSERT_EQ(capture.lines.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : capture.lines) {
    // Each delivered line is exactly one well-formed message: correct
    // prefix, one trailing newline, the full payload intact.
    EXPECT_EQ(line.rfind("[dbaugur INFO] writer ", 0), 0u) << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find("payload xxxxxxxxxxxxxxxx"), std::string::npos)
        << line;
  }
}

TEST(LoggingTest, NullSinkRestoresDefaultAndLevelFilters) {
  LineCapture capture;
  SetLogSink(&LineCapture::Sink, &capture);
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  DBAUGUR_DEBUG("should be filtered");
  DBAUGUR_WARN("should pass");
  SetLogLevel(prev);
  SetLogSink(nullptr, nullptr);
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0], "[dbaugur WARN] should pass\n");
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool(4);
  std::vector<double> acc(64, 0.0);
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(acc.size(), 8, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) acc[i] += 1.0;
    });
  }
  EXPECT_DOUBLE_EQ(std::accumulate(acc.begin(), acc.end(), 0.0), 5.0 * 64);
}

TEST(ThreadPoolDeathTest, NestedParallelForAbortsInsteadOfDeadlocking) {
  // The non-reentrancy contract used to be prose; now it is a DBAUGUR_CHECK.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(8, 1, [&pool](size_t, size_t) {
          pool.ParallelFor(2, 1, [](size_t, size_t) {});
        });
      },
      "not reentrant");
}

// The annotated wrappers must behave exactly like the std primitives they
// shim (common/mutex.h): mutual exclusion, timed waits, notify wakeups.
TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately unsynchronized except through mu
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitUntilTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  bool timed_out = cv.WaitUntil(
      &mu, std::chrono::steady_clock::now() + std::chrono::milliseconds(20));
  EXPECT_TRUE(timed_out);
}

TEST(CondVarTest, NotifyWakesWaiterAndMutexIsReheld) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = true;  // must hold mu again here
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace dbaugur

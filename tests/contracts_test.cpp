// Tests for the contracts library (common/contracts.h): failure formatting,
// all comparison macros, the DCHECK on/off toggle, and the Release-mode
// regression for StatusOr — DBAUGUR_CHECK must fire even under -DNDEBUG,
// which is the default test configuration here.

#include "common/contracts.h"

#include <string>

#include <gtest/gtest.h>

#include "cluster/descender.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace dbaugur {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsTest, PassingChecksAreSilent) {
  DBAUGUR_CHECK(true);
  DBAUGUR_CHECK(1 + 1 == 2, "math still works");
  DBAUGUR_CHECK_EQ(4, 4);
  DBAUGUR_CHECK_NE(4, 5);
  DBAUGUR_CHECK_LT(4, 5);
  DBAUGUR_CHECK_LE(4, 4);
  DBAUGUR_CHECK_GT(5, 4);
  DBAUGUR_CHECK_GE(5, 5);
}

TEST(ContractsTest, CheckEvaluatesConditionExactlyOnce) {
  int calls = 0;
  DBAUGUR_CHECK(++calls > 0, "side effect must run once");
  EXPECT_EQ(calls, 1);
  int lhs_evals = 0;
  DBAUGUR_CHECK_EQ((++lhs_evals, 7), 7);
  EXPECT_EQ(lhs_evals, 1);
}

TEST(ContractsDeathTest, FailureReportsFileLineAndMessageOperands) {
  // The report must carry the stringified condition, this file's name with a
  // line number, and the streamed message operands.
  EXPECT_DEATH(DBAUGUR_CHECK(1 == 2, "widget count ", 42, " is wrong"),
               "CHECK failed: 1 == 2 at .*contracts_test\\.cpp:[0-9]+ \\| "
               "widget count 42 is wrong");
}

TEST(ContractsDeathTest, FailureWithoutMessageStillReportsCondition) {
  EXPECT_DEATH(DBAUGUR_CHECK(false),
               "CHECK failed: false at .*contracts_test\\.cpp:[0-9]+");
}

TEST(ContractsDeathTest, ComparisonFormsPrintBothOperands) {
  EXPECT_DEATH(DBAUGUR_CHECK_EQ(3, 4), "lhs=3 rhs=4");
  EXPECT_DEATH(DBAUGUR_CHECK_NE(7, 7), "lhs=7 rhs=7");
  EXPECT_DEATH(DBAUGUR_CHECK_LT(5, 5), "lhs=5 rhs=5");
  EXPECT_DEATH(DBAUGUR_CHECK_LE(6, 5), "lhs=6 rhs=5");
  EXPECT_DEATH(DBAUGUR_CHECK_GT(5, 5), "lhs=5 rhs=5");
  EXPECT_DEATH(DBAUGUR_CHECK_GE(4, 5), "lhs=4 rhs=5");
}

TEST(ContractsDeathTest, ComparisonFormsAppendExtraMessage) {
  size_t rows = 3, cols = 4;
  EXPECT_DEATH(DBAUGUR_CHECK_EQ(rows, cols, "matrix must be square"),
               "CHECK failed: rows == cols .*lhs=3 rhs=4 \\| "
               "matrix must be square");
}

TEST(ContractsDeathTest, CheckIsActiveUnderNdebug) {
  // The whole point of DBAUGUR_CHECK: unlike assert(), -DNDEBUG (the default
  // Release/test configuration) must not strip it.
#ifdef NDEBUG
  EXPECT_DEATH(DBAUGUR_CHECK(false, "must fire in Release"),
               "must fire in Release");
#else
  EXPECT_DEATH(DBAUGUR_CHECK(false, "must fire in Debug"),
               "must fire in Debug");
#endif
}

TEST(ContractsDeathTest, DcheckFiresWhenEnabled) {
#if DBAUGUR_DCHECKS_ENABLED
  EXPECT_DEATH(DBAUGUR_DCHECK(false, "dchecks are on"), "dchecks are on");
  EXPECT_DEATH(DBAUGUR_DCHECK_EQ(1, 2), "lhs=1 rhs=2");
#else
  SUCCEED() << "DCHECKs compiled out in this configuration";
#endif
}

TEST(ContractsTest, DcheckCompiledOutWhenDisabled) {
#if DBAUGUR_DCHECKS_ENABLED
  SUCCEED() << "DCHECKs active in this configuration";
#else
  // Compiled out: must neither abort nor evaluate operands at runtime.
  int evals = 0;
  DBAUGUR_DCHECK(++evals > 0, "compiled out");
  DBAUGUR_DCHECK_EQ(++evals, 99);
  DBAUGUR_DCHECK_NE(++evals, 0);
  DBAUGUR_DCHECK_LT(++evals, -1);
  DBAUGUR_DCHECK_LE(++evals, -1);
  DBAUGUR_DCHECK_GT(++evals, 99);
  DBAUGUR_DCHECK_GE(++evals, 99);
  EXPECT_EQ(evals, 0);
#endif
}

// Regression for the Release-mode contract hole: StatusOr misuse used to be
// guarded by assert(), which -DNDEBUG compiled out, turning value()-on-error
// into a read of a disengaged optional.
TEST(ContractsDeathTest, StatusOrValueOnErrorAbortsInEveryBuildType) {
  StatusOr<int> err(Status::InvalidArgument("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_DEATH((void)err.value(),
               "StatusOr::value\\(\\) called on error: InvalidArgument: boom");
}

TEST(ContractsDeathTest, StatusOrDerefOnErrorAborts) {
  StatusOr<std::string> err(Status::NotFound("missing"));
  EXPECT_DEATH((void)*err, "StatusOr::value\\(\\) called on error");
  EXPECT_DEATH((void)err->size(), "StatusOr::value\\(\\) called on error");
}

TEST(ContractsDeathTest, StatusOrFromOkStatusAborts) {
  EXPECT_DEATH(StatusOr<int>{Status::OK()},
               "StatusOr constructed from OK status");
}

// Configuration contracts guarding the clustering hot path: a negative
// radius silently empties every neighborhood and a zero thread count would
// deadlock the batch sweep, so both abort at construction.
TEST(ContractsDeathTest, DescenderRejectsNegativeRadius) {
  cluster::DescenderOptions opts;
  opts.radius = -1.0;
  EXPECT_DEATH({ cluster::Descender desc(opts); }, "radius must be non-negative");
}

TEST(ContractsDeathTest, DescenderRejectsZeroThreads) {
  cluster::DescenderOptions opts;
  opts.threads = 0;
  EXPECT_DEATH({ cluster::Descender desc(opts); },
               "thread count must be at least 1");
}

TEST(ContractsTest, DescenderAcceptsBoundaryConfig) {
  cluster::DescenderOptions opts;
  opts.radius = 0.0;  // degenerate but legal: only exact duplicates match
  opts.threads = 1;
  cluster::Descender desc(opts);
  EXPECT_EQ(desc.trace_count(), 0u);
}

TEST(ContractsDeathTest, ThreadPoolRejectsZeroThreads) {
  EXPECT_DEATH({ ThreadPool pool(0); }, "ThreadPool needs at least one thread");
}

TEST(ContractsTest, StatusOrHappyPathUnaffected) {
  StatusOr<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(*ok, 7);
}

}  // namespace
}  // namespace dbaugur

// End-to-end integration tests: query log -> SQL2Template -> Descender
// clustering -> per-cluster DBAugur ensembles -> trace-level forecasts.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dbaugur.h"
#include "workloads/generators.h"
#include "workloads/query_log.h"

namespace dbaugur::core {
namespace {

DBAugurOptions FastOptions() {
  DBAugurOptions opts;
  opts.extraction.interval_seconds = 600;
  opts.clustering.radius = 6.0;
  opts.clustering.min_size = 2;
  opts.clustering.dtw.window = 6;
  opts.top_k = 4;
  opts.forecaster.window = 24;
  opts.forecaster.horizon = 1;
  opts.forecaster.epochs = 4;  // integration smoke, not accuracy
  return opts;
}

TEST(DBAugurSystemTest, FullPipelineOnGeneratedLog) {
  workloads::QueryLogOptions lopts;
  lopts.days = 2;
  lopts.seed = 61;
  auto log =
      workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), lopts);

  DBAugurSystem sys(FastOptions());
  ASSERT_TRUE(sys.IngestQueryLog(log).ok());
  // Add a resource trace aligned with the 2-day log at 10-minute bins.
  workloads::AlibabaOptions aopts;
  aopts.days = 2;
  aopts.interval_seconds = 600;
  sys.AddResourceTrace(workloads::GenerateAlibabaDisk(aopts));

  ASSERT_TRUE(sys.Train().ok());
  // 6 templates + 1 resource trace.
  EXPECT_EQ(sys.trace_count(), 7u);
  EXPECT_GT(sys.forecast_count(), 0u);
  EXPECT_LE(sys.forecast_count(), 4u);

  // Ticket price and seats-left templates track each other with a small lag
  // (the paper's planetarium example): they must share a cluster.
  const cluster::Descender* desc = sys.clustering();
  ASSERT_NE(desc, nullptr);
  int price_label = -1, seats_label = -1;
  for (size_t i = 0; i < sys.trace_count(); ++i) {
    const auto& ref = sys.trace_ref(i);
    if (ref.kind != TraceRef::Kind::kQueryTemplate) continue;
    if (ref.name.find("price") != std::string::npos) {
      price_label = desc->label(i);
    } else if (ref.name.find("seats FROM tickets WHERE") != std::string::npos &&
               ref.name.find("price") == std::string::npos) {
      seats_label = desc->label(i);
    }
  }
  ASSERT_GE(price_label, 0);
  ASSERT_GE(seats_label, 0);
  EXPECT_EQ(price_label, seats_label);

  // Cluster forecasts produce finite values.
  for (size_t rank = 0; rank < sys.forecast_count(); ++rank) {
    auto pred = sys.ForecastCluster(rank);
    ASSERT_TRUE(pred.ok());
    EXPECT_TRUE(std::isfinite(*pred));
  }
  // Trace forecasts for traces in forecasted clusters.
  size_t forecastable = 0;
  for (size_t i = 0; i < sys.trace_count(); ++i) {
    auto pred = sys.ForecastTrace(i);
    if (pred.ok()) {
      EXPECT_TRUE(std::isfinite(*pred));
      ++forecastable;
    } else {
      EXPECT_EQ(pred.status().code(), StatusCode::kNotFound);
    }
  }
  EXPECT_GT(forecastable, 0u);
}

TEST(DBAugurSystemTest, TraceForecastsScaleWithProportion) {
  // Two templates with identical shape but 1:3 volume ratio end up in one
  // cluster; their forecasts must split the cluster total accordingly.
  std::vector<trace::LogEntry> log;
  for (int64_t t = 0; t < 2 * 86400; t += 600) {
    double phase = 2.0 * M_PI * static_cast<double>(t % 86400) / 86400.0;
    int64_t n = static_cast<int64_t>(8.0 + 6.0 * std::sin(phase));
    for (int64_t q = 0; q < n; ++q) {
      log.push_back({t + q, "SELECT * FROM small WHERE id = 1"});
      log.push_back({t + q, "SELECT * FROM big WHERE id = 1"});
      log.push_back({t + q, "SELECT * FROM big WHERE id = 2"});
      log.push_back({t + q, "SELECT * FROM big WHERE id = 3"});
    }
  }
  DBAugurOptions opts = FastOptions();
  opts.top_k = 2;
  DBAugurSystem sys(opts);
  ASSERT_TRUE(sys.IngestQueryLog(log).ok());
  ASSERT_TRUE(sys.Train().ok());
  ASSERT_EQ(sys.trace_count(), 2u);
  auto small = sys.ForecastTrace(0);
  auto big = sys.ForecastTrace(1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_NEAR(*big / *small, 3.0, 0.2);
}

TEST(DBAugurSystemTest, TrainWithoutDataFails) {
  DBAugurSystem sys(FastOptions());
  EXPECT_EQ(sys.Train().code(), StatusCode::kFailedPrecondition);
}

TEST(DBAugurSystemTest, MisalignedResourceTraceRejected) {
  workloads::QueryLogOptions lopts;
  lopts.days = 1;
  auto log =
      workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), lopts);
  DBAugurSystem sys(FastOptions());
  ASSERT_TRUE(sys.IngestQueryLog(log).ok());
  sys.AddResourceTrace(ts::Series(0, 600, std::vector<double>(10, 0.5)));
  EXPECT_EQ(sys.Train().code(), StatusCode::kInvalidArgument);
}

TEST(DBAugurSystemTest, ForecastGuards) {
  DBAugurSystem sys(FastOptions());
  EXPECT_EQ(sys.ForecastCluster(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sys.ForecastTrace(0).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbaugur::core

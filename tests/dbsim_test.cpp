// Tests for the mini relational engine, cost model, advisor, and replay.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dbsim/advisor.h"
#include "dbsim/bustracker_db.h"
#include "dbsim/engine.h"
#include "dbsim/query.h"
#include "dbsim/replay.h"
#include "dbsim/value.h"
#include "workloads/query_log.h"

namespace dbaugur::dbsim {
namespace {

TEST(ValueTest, OrderingAndEquality) {
  ValueLess less;
  EXPECT_TRUE(less(Value(int64_t{1}), Value(int64_t{2})));
  EXPECT_TRUE(less(Value(1.5), Value(int64_t{2})));  // mixed numeric
  EXPECT_TRUE(less(Value(int64_t{2}), Value(std::string("a"))));
  EXPECT_TRUE(ValueEquals(Value(int64_t{2}), Value(2.0)));
  EXPECT_FALSE(ValueEquals(Value(std::string("a")), Value(std::string("b"))));
  EXPECT_EQ(TypeOf(Value(int64_t{1})), ColumnType::kInt);
  EXPECT_EQ(TypeOf(Value(std::string("x"))), ColumnType::kString);
}

Database MakeTinyDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("t", {{"id", ColumnType::kInt},
                                   {"score", ColumnType::kDouble},
                                   {"name", ColumnType::kString}})
                  .ok());
  for (int64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(db.Insert("t", {i % 500, static_cast<double>(i % 1000),
                                std::string(i % 2 ? "odd" : "even")})
                    .ok());
  }
  return db;
}

TEST(EngineTest, SelectEqualitySeqScan) {
  Database db = MakeTinyDb();
  auto res = db.Execute("SELECT * FROM t WHERE id = 7");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->matched_rows, 20u);  // 10000 rows, id = i % 500
  EXPECT_EQ(res->access_path, "seqscan");
  EXPECT_DOUBLE_EQ(res->cost_pages, 100.0);  // 10000 rows / 100 per page
}

TEST(EngineTest, IndexScanCheaperAndSameResult) {
  Database db = MakeTinyDb();
  auto seq = db.Execute("SELECT * FROM t WHERE id = 7");
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(db.CreateIndex("t", "id").ok());
  auto idx = db.Execute("SELECT * FROM t WHERE id = 7");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->matched_rows, seq->matched_rows);
  EXPECT_EQ(idx->access_path, "index:id");
  EXPECT_LT(idx->cost_pages, seq->cost_pages);  // descent + 20 fetches < 100
  // Row contents identical modulo order.
  EXPECT_EQ(idx->rows.size(), seq->rows.size());
}

TEST(EngineTest, RangePredicatesViaIndex) {
  Database db = MakeTinyDb();
  ASSERT_TRUE(db.CreateIndex("t", "id").ok());
  auto res = db.Execute("SELECT * FROM t WHERE id < 3");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->matched_rows, 60u);  // ids 0,1,2 -> 20 each
  auto res2 = db.Execute("SELECT * FROM t WHERE id >= 498");
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->matched_rows, 40u);
  EXPECT_EQ(res2->access_path, "index:id");
}

TEST(EngineTest, ProjectionAndConjunction) {
  Database db = MakeTinyDb();
  auto res = db.Execute("SELECT name FROM t WHERE id = 1 AND score > 5");
  ASSERT_TRUE(res.ok());
  ASSERT_GT(res->matched_rows, 0u);
  for (const auto& row : res->rows) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(TypeOf(row[0]), ColumnType::kString);
  }
}

TEST(EngineTest, UpdateModifiesRowsAndCost) {
  Database db = MakeTinyDb();
  auto res = db.Execute("UPDATE t SET score = 4242.5 WHERE id = 3");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->matched_rows, 20u);
  EXPECT_GT(res->cost_pages, 10.0);  // scan + 20 writes
  auto check = db.Execute("SELECT * FROM t WHERE score = 4242.5");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->matched_rows, 20u);
}

TEST(EngineTest, UpdateMaintainsIndex) {
  Database db = MakeTinyDb();
  ASSERT_TRUE(db.CreateIndex("t", "score").ok());
  ASSERT_TRUE(db.Execute("UPDATE t SET score = 42.5 WHERE id = 3").ok());
  auto res = db.Execute("SELECT * FROM t WHERE score = 42.5");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->matched_rows, 20u);
  EXPECT_EQ(res->access_path, "index:score");
}

TEST(EngineTest, StringPredicates) {
  Database db = MakeTinyDb();
  auto res = db.Execute("SELECT * FROM t WHERE name = 'odd'");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->matched_rows, 5000u);
}

TEST(EngineTest, ErrorsSurface) {
  Database db = MakeTinyDb();
  EXPECT_FALSE(db.Execute("SELECT * FROM missing WHERE id = 1").ok());
  EXPECT_FALSE(db.Execute("SELECT * FROM t WHERE nocol = 1").ok());
  EXPECT_FALSE(db.Execute("DELETE FROM t").ok());  // unsupported verb
  EXPECT_FALSE(db.CreateTable("t", {}).ok());      // duplicate
  EXPECT_FALSE(db.DropIndex("t", "id").ok());      // no such index
}

TEST(QueryParserTest, ParsesShapes) {
  auto sel = ParseQuery("SELECT price, seats FROM tickets WHERE trip_id = 5");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->kind, StatementKind::kSelect);
  EXPECT_EQ(sel->table, "tickets");
  ASSERT_EQ(sel->select_columns.size(), 2u);
  ASSERT_EQ(sel->predicates.size(), 1u);
  EXPECT_EQ(sel->predicates[0].column, "trip_id");
  EXPECT_TRUE(ValueEquals(sel->predicates[0].value, Value(int64_t{5})));

  auto upd = ParseQuery("UPDATE positions SET lat = 40.5, lon = -79.9 WHERE bus_id = 7");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->kind, StatementKind::kUpdate);
  ASSERT_EQ(upd->assignments.size(), 2u);
  EXPECT_TRUE(ValueEquals(upd->assignments[1].value, Value(-79.9)));
}

TEST(QueryParserTest, NegativeLiteralsAndStrings) {
  auto q = ParseQuery("SELECT * FROM t WHERE a > -5 AND name = 'bob'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ValueEquals(q->predicates[0].value, Value(int64_t{-5})));
  EXPECT_TRUE(ValueEquals(q->predicates[1].value, Value(std::string("bob"))));
}

TEST(QueryParserTest, RejectsUnsupported) {
  EXPECT_FALSE(ParseQuery("SELECT * FROM a JOIN b ON a.id = b.id").ok());
  EXPECT_FALSE(ParseQuery("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a = 1 OR b = 2").ok());
}

TEST(CostModelTest, EstimateTracksIndexBenefit) {
  Database db = MakeTinyDb();
  auto spec = ParseQuery("SELECT * FROM t WHERE id = 7");
  ASSERT_TRUE(spec.ok());
  auto base = db.EstimateCost(*spec);
  ASSERT_TRUE(base.ok());
  auto hypo = db.EstimateCost(*spec, {{"t", "id"}});
  ASSERT_TRUE(hypo.ok());
  EXPECT_LT(*hypo, *base);
  // And the estimate with a hypothetical index matches the real-index cost.
  ASSERT_TRUE(db.CreateIndex("t", "id").ok());
  auto real = db.EstimateCost(*spec);
  ASSERT_TRUE(real.ok());
  EXPECT_DOUBLE_EQ(*real, *hypo);
}

TEST(AdvisorTest, PicksSelectiveColumnFirst) {
  Database db = MakeTinyDb();
  // Workload dominated by id-equality lookups (selectivity 1/500) plus a
  // few score lookups (1/1000): with budget 1, id wins.
  std::vector<WeightedQuery> workload;
  auto q1 = ParseQuery("SELECT * FROM t WHERE id = 7");
  auto q2 = ParseQuery("SELECT * FROM t WHERE score = 3.0");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  workload.push_back({*q1, 100.0});
  workload.push_back({*q2, 10.0});
  auto rec = RecommendIndexes(db, workload, {1});
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->indexes.size(), 1u);
  EXPECT_EQ(rec->indexes[0].column, "id");
  EXPECT_LT(rec->optimized_cost, rec->baseline_cost);
}

TEST(AdvisorTest, RespectsBudgetAndStopsWhenNoGain) {
  Database db = MakeTinyDb();
  std::vector<WeightedQuery> workload;
  auto q1 = ParseQuery("SELECT * FROM t WHERE id = 7");
  auto q2 = ParseQuery("SELECT * FROM t WHERE score = 3.0");
  auto q3 = ParseQuery("SELECT * FROM t WHERE name = 'odd'");
  workload.push_back({*q1, 10.0});
  workload.push_back({*q2, 10.0});
  workload.push_back({*q3, 10.0});
  auto rec = RecommendIndexes(db, workload, {5});
  ASSERT_TRUE(rec.ok());
  // name = 'odd' matches 50% of rows: an index never beats the scan, so at
  // most two indexes are chosen despite the budget of five.
  EXPECT_LE(rec->indexes.size(), 2u);
  for (const auto& idx : rec->indexes) EXPECT_NE(idx.column, "name");
}

TEST(AdvisorTest, BuildWorkloadMergesTemplates) {
  size_t skipped = 0;
  auto workload = BuildWorkload(
      {"SELECT * FROM t WHERE id = 1", "SELECT * FROM t WHERE id = 2",
       "SELECT * FROM t WHERE score = 1.0", "TRUNCATE t"},
      &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(workload.size(), 2u);
  double total_weight = 0.0;
  for (const auto& wq : workload) total_weight += wq.weight;
  EXPECT_DOUBLE_EQ(total_weight, 3.0);
}

TEST(BusTrackerDbTest, SchemaAndTemplatesExecutable) {
  BusTrackerDbOptions opts;
  opts.positions = 1000;
  opts.schedules = 1000;
  opts.tickets = 1000;
  opts.trips = 1000;
  auto db = MakeBusTrackerDatabase(opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->TableNames().size(), 4u);
  // Every generated template shape must execute.
  Rng rng(50);
  for (auto& spec : workloads::BusTrackerTemplates()) {
    auto res = db->Execute(spec.make_sql(rng));
    ASSERT_TRUE(res.ok()) << spec.name << ": " << res.status().ToString();
  }
}

TEST(ReplayTest, IndexActionsImproveLaterWindows) {
  BusTrackerDbOptions dbopts;
  dbopts.positions = 5000;
  dbopts.schedules = 5000;
  dbopts.tickets = 5000;
  dbopts.trips = 5000;
  auto db = MakeBusTrackerDatabase(dbopts);
  ASSERT_TRUE(db.ok());
  workloads::QueryLogOptions lopts;
  lopts.days = 1;
  lopts.seed = 51;
  auto log =
      workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), lopts);
  ReplayOptions ropts;
  ropts.window_seconds = 7200;
  // Build indexes at noon.
  std::vector<IndexAction> actions = {
      {43200,
       {{"positions", "route_id"}, {"tickets", "trip_id"}, {"schedules", "stop_id"}},
       {}}};
  auto stats = ReplayWorkload(&*db, log, actions, ropts);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 12u);  // 24h / 2h
  // Average per-query cost after the build must be well below before.
  double before = 0, after = 0;
  int nb = 0, na = 0;
  for (const auto& w : *stats) {
    if (w.queries == 0) continue;
    if (w.start < 43200) {
      before += w.avg_cost_pages;
      ++nb;
    } else if (w.start >= 43200 + 7200) {
      after += w.avg_cost_pages;
      ++na;
    }
  }
  ASSERT_GT(nb, 0);
  ASSERT_GT(na, 0);
  EXPECT_LT(after / na, 0.5 * before / nb);
}

TEST(ReplayTest, Validation) {
  Database db;
  std::vector<trace::LogEntry> log = {{0, "SELECT 1"}};
  EXPECT_FALSE(ReplayWorkload(nullptr, log, {}, {}).ok());
  EXPECT_FALSE(ReplayWorkload(&db, {}, {}, {}).ok());
  ReplayOptions bad;
  bad.window_seconds = 0;
  EXPECT_FALSE(ReplayWorkload(&db, log, {}, bad).ok());
}

}  // namespace
}  // namespace dbaugur::dbsim

// Per-tier tests for the vectorized DTW cascade (dtw/dtw_simd.inc).
//
// Contract under test (dtw/dtw_simd.h): the anti-diagonal wavefront DTW and
// the envelope construction are bit-identical to the scalar tier on every
// input; LB_Keogh may differ by a few ULP (W-partial-sum reduction) but must
// stay an admissible lower bound; and the full cascade returns the same
// accept/reject decisions and distances as plain DTW on every tier.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dtw/dtw.h"

namespace dbaugur::dtw {
namespace {

using simd::Tier;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<Tier> HostTiers() {
  Tier out[4];
  int count = simd::SupportedTiers(out);
  return std::vector<Tier>(out, out + count);
}

std::vector<double> RandomTrace(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(-3.0, 3.0);
  return v;
}

class DtwTierTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::ResetForcedTier(); }
};

// Length pairs around every vector width (2/4/8 f64 lanes) plus long traces
// with many full vector chunks per anti-diagonal; both equal and unequal.
const size_t kLengthPairs[][2] = {{1, 1},   {1, 9},    {5, 5},    {13, 7},
                                  {29, 37}, {64, 64},  {97, 103}, {251, 257}};
const int kWindows[] = {-1, 0, 1, 5, 10};

TEST_F(DtwTierTest, DtwDistanceBitIdenticalAcrossTiers) {
  uint64_t seed = 1;
  for (const auto& lens : kLengthPairs) {
    for (int window : kWindows) {
      auto a = RandomTrace(lens[0], ++seed);
      auto b = RandomTrace(lens[1], ++seed);
      DtwOptions opts;
      opts.window = window;
      ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
      auto want = DtwDistance(a, b, opts);
      ASSERT_TRUE(want.ok());
      for (Tier t : HostTiers()) {
        ASSERT_TRUE(simd::ForceTier(t));
        auto got = DtwDistance(a, b, opts);
        ASSERT_TRUE(got.ok()) << simd::TierName(t);
        // Exact per-cell math in the wavefront: bitwise equality, not tol.
        EXPECT_EQ(*got, *want)
            << simd::TierName(t) << " n=" << lens[0] << " m=" << lens[1]
            << " window=" << window;
      }
    }
  }
}

TEST_F(DtwTierTest, EarlyAbandonDecisionsMatchScalarOutput) {
  uint64_t seed = 101;
  for (const auto& lens : kLengthPairs) {
    auto a = RandomTrace(lens[0], ++seed);
    auto b = RandomTrace(lens[1], ++seed);
    DtwOptions opts;  // default window 10
    ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
    double exact = *DtwDistance(a, b, opts);
    // Below, at, and above the true distance. (At the exact bound the
    // rounded sqrt→square round trip makes the reject legitimately go either
    // way, so only cross-tier equality is asserted there.)
    const double bounds[] = {exact * 0.5, exact, exact * 1.5, 1e-6, kNoBound};
    for (double ub : bounds) {
      ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
      auto want = DtwDistance(a, b, opts, ub);
      ASSERT_TRUE(want.ok());
      if (ub > exact * 1.2) {
        EXPECT_EQ(*want, exact);  // must not abandon above the bound
      }
      for (Tier t : HostTiers()) {
        ASSERT_TRUE(simd::ForceTier(t));
        auto got = DtwDistance(a, b, opts, ub);
        ASSERT_TRUE(got.ok()) << simd::TierName(t);
        EXPECT_EQ(*got, *want) << simd::TierName(t) << " ub=" << ub;
      }
    }
  }
}

TEST_F(DtwTierTest, EnvelopeBitIdenticalAcrossTiers) {
  uint64_t seed = 301;
  for (size_t n : {1, 2, 7, 33, 64, 257}) {
    for (int window : kWindows) {
      auto seq = RandomTrace(n, ++seed);
      ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
      Envelope want = BuildEnvelope(seq, window);
      for (Tier t : HostTiers()) {
        ASSERT_TRUE(simd::ForceTier(t));
        Envelope got = BuildEnvelope(seq, window);
        EXPECT_EQ(got.lower, want.lower)
            << simd::TierName(t) << " n=" << n << " window=" << window;
        EXPECT_EQ(got.upper, want.upper)
            << simd::TierName(t) << " n=" << n << " window=" << window;
      }
    }
  }
}

TEST_F(DtwTierTest, LbKeoghStaysAdmissibleAndUlpCloseOnEveryTier) {
  uint64_t seed = 401;
  for (size_t n : {1, 5, 30, 64, 211}) {
    for (int window : {0, 3, 10}) {
      auto q = RandomTrace(n, ++seed);
      auto c = RandomTrace(n, ++seed);
      DtwOptions opts;
      opts.window = window;
      ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
      Envelope env = BuildEnvelope(c, window);
      double want = LbKeogh(q, env);
      double exact = *DtwDistance(q, c, opts);
      for (Tier t : HostTiers()) {
        ASSERT_TRUE(simd::ForceTier(t));
        double got = LbKeogh(q, env);
        // W-partial-sum reduction: a handful of ULP around the scalar sum.
        EXPECT_NEAR(got, want, 64.0 * std::numeric_limits<double>::epsilon() *
                                   (want + 1.0))
            << simd::TierName(t) << " n=" << n << " window=" << window;
        // Admissibility: the bound can never exceed the true DTW distance
        // (allowing the same ULP slack for the vector reduction).
        EXPECT_LE(got, exact + 64.0 * std::numeric_limits<double>::epsilon() *
                                   (exact + 1.0))
            << simd::TierName(t) << " n=" << n << " window=" << window;
      }
    }
  }
}

TEST_F(DtwTierTest, CascadeMatchesPlainDtwOnEveryTier) {
  const size_t kN = 40;
  const int kWindow = 5;
  DtwOptions opts;
  opts.window = kWindow;
  uint64_t seed = 701;
  for (Tier t : HostTiers()) {
    ASSERT_TRUE(simd::ForceTier(t));
    CascadingDtw cascade(opts);
    int64_t calls = 0;
    for (int rep = 0; rep < 24; ++rep) {
      auto q = RandomTrace(kN, ++seed);
      auto c = RandomTrace(kN, ++seed);
      Envelope q_env = BuildEnvelope(q, kWindow);
      Envelope c_env = BuildEnvelope(c, kWindow);
      double exact = *DtwDistance(q, c, opts);
      // Radii below and above the true distance: the cascade's accept /
      // reject must equal the plain-DTW comparison on every tier.
      for (double radius : {exact * 0.25, exact * 0.9, exact * 1.1}) {
        auto within = cascade.WithinRadius(q, c, c_env, radius, &q_env);
        ASSERT_TRUE(within.ok()) << simd::TierName(t);
        EXPECT_EQ(*within, exact <= radius)
            << simd::TierName(t) << " radius=" << radius
            << " exact=" << exact;
        ++calls;
      }
      // Distance with a generous bound must be the exact distance.
      auto d = cascade.Distance(q, c, c_env, exact * 2.0, &q_env);
      ASSERT_TRUE(d.ok()) << simd::TierName(t);
      EXPECT_EQ(*d, exact) << simd::TierName(t);
      ++calls;
    }
    // Every call is decided exactly once: by LB_Kim, LB_Keogh, or full DTW.
    const PruningStats& st = cascade.stats();
    EXPECT_EQ(st.kim_rejections + st.keogh_rejections + st.full_dtw, calls)
        << simd::TierName(t);
    EXPECT_GT(st.full_dtw, 0) << simd::TierName(t);
  }
}

}  // namespace
}  // namespace dbaugur::dtw

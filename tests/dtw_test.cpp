// Tests for windowed DTW, envelopes, and the lower-bound cascade.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dtw/dtw.h"

namespace dbaugur::dtw {
namespace {

double Euclid(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

TEST(DtwTest, IdenticalTracesZeroDistance) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  auto d = DtwDistance(a, a, {2});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST(DtwTest, KnownSmallExample) {
  // a = [0,0,1], b = [0,1,1]: alignment (0,0)(1,0)... optimal is 0.
  std::vector<double> a = {0, 0, 1};
  std::vector<double> b = {0, 1, 1};
  auto d = DtwDistance(a, b, {-1});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
  // Euclidean (lock-step) distance is sqrt(1) = 1: DTW absorbs the shift.
  EXPECT_DOUBLE_EQ(Euclid(a, b), 1.0);
}

TEST(DtwTest, NeverExceedsEuclidean) {
  // The identity alignment is one warping path, so DTW <= Euclidean.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(40), b(40);
    for (size_t i = 0; i < 40; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
    }
    auto d = DtwDistance(a, b, {40});
    ASSERT_TRUE(d.ok());
    EXPECT_LE(*d, Euclid(a, b) + 1e-9);
  }
}

TEST(DtwTest, ShiftedSineIsCloseUnderDtwNotEuclidean) {
  std::vector<double> a(64), b(64);
  for (size_t i = 0; i < 64; ++i) {
    a[i] = std::sin(2 * M_PI * static_cast<double>(i) / 16.0);
    b[i] = std::sin(2 * M_PI * static_cast<double>(i + 3) / 16.0);  // shift 3
  }
  auto d = DtwDistance(a, b, {8});
  ASSERT_TRUE(d.ok());
  double euclid = Euclid(a, b);
  // DTW absorbs the interior of the shift; only boundary cells (where first
  // must match first) keep residual cost, so a ~3.5x reduction remains.
  EXPECT_LT(*d, euclid * 0.35) << "dtw=" << *d << " euclid=" << euclid;
}

TEST(DtwTest, DifferentLengthsSupported) {
  std::vector<double> a = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> b = {0, 2, 4, 6};  // same ramp, half the samples
  auto d = DtwDistance(a, b, {1});
  ASSERT_TRUE(d.ok());  // band widened to |n-m|
  EXPECT_LT(*d, 3.0);
}

TEST(DtwTest, WindowConstraintIncreasesDistance) {
  // A large shift that a narrow band cannot absorb.
  std::vector<double> a(50, 0.0), b(50, 0.0);
  for (size_t i = 0; i < 10; ++i) a[i + 5] = 1.0;
  for (size_t i = 0; i < 10; ++i) b[i + 30] = 1.0;
  auto narrow = DtwDistance(a, b, {2});
  auto wide = DtwDistance(a, b, {-1});
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_GT(*narrow, *wide);
  EXPECT_DOUBLE_EQ(*wide, 0.0);
}

TEST(DtwTest, EmptyTraceRejected) {
  EXPECT_FALSE(DtwDistance({}, {1.0}, {2}).ok());
  EXPECT_FALSE(DtwDistance({1.0}, {}, {2}).ok());
}

TEST(DtwTest, EarlyAbandonReturnsInfinity) {
  std::vector<double> a(20, 0.0), b(20, 100.0);
  auto d = DtwDistance(a, b, {5}, /*upper_bound=*/1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isinf(*d));
}

TEST(DtwTest, EarlyAbandonAgreesWhenWithinBound) {
  Rng rng(7);
  std::vector<double> a(30), b(30);
  for (size_t i = 0; i < 30; ++i) {
    a[i] = rng.Gaussian();
    b[i] = a[i] + rng.Gaussian(0, 0.1);
  }
  auto exact = DtwDistance(a, b, {5});
  auto bounded = DtwDistance(a, b, {5}, 1000.0);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(bounded.ok());
  EXPECT_DOUBLE_EQ(*exact, *bounded);
}

TEST(EnvelopeTest, BoundsContainSequence) {
  Rng rng(9);
  std::vector<double> s(50);
  for (double& x : s) x = rng.Gaussian();
  Envelope env = BuildEnvelope(s, 4);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(env.lower[i], s[i]);
    EXPECT_GE(env.upper[i], s[i]);
  }
}

TEST(EnvelopeTest, WiderWindowLoosensEnvelope) {
  std::vector<double> s = {0, 5, 1, 4, 2, 3};
  Envelope narrow = BuildEnvelope(s, 1);
  Envelope wide = BuildEnvelope(s, 5);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(wide.lower[i], narrow.lower[i]);
    EXPECT_GE(wide.upper[i], narrow.upper[i]);
  }
}

TEST(LowerBoundTest, LbKeoghIsLowerBoundOfDtw) {
  Rng rng(11);
  const int kWindow = 5;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(32), b(32);
    for (size_t i = 0; i < 32; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
    }
    Envelope env = BuildEnvelope(b, kWindow);
    double lb = LbKeogh(a, env);
    auto d = DtwDistance(a, b, {kWindow});
    ASSERT_TRUE(d.ok());
    EXPECT_LE(lb, *d + 1e-9) << "trial " << trial;
  }
}

TEST(LowerBoundTest, LbKimIsLowerBoundOfDtw) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(20), b(20);
    for (size_t i = 0; i < 20; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
    }
    double lb = LbKim(a, b);
    auto d = DtwDistance(a, b, {20});
    ASSERT_TRUE(d.ok());
    EXPECT_LE(lb, *d + 1e-9);
  }
}

TEST(LowerBoundTest, LbKimShortSeriesCases) {
  // 1×m: the first and last path cells are distinct (b.front() and b.back()
  // both align against a[0]), so the sqrt(df²+dl²) form applies and is
  // tighter than the old max(df, dl) fallback.
  std::vector<double> one = {2.0};
  std::vector<double> m = {0.0, 1.0, 5.0};
  double lb_1m = LbKim(one, m);
  EXPECT_DOUBLE_EQ(lb_1m, std::sqrt(4.0 + 9.0));
  EXPECT_GT(lb_1m, std::max(std::fabs(2.0 - 0.0), std::fabs(2.0 - 5.0)));
  auto d_1m = DtwDistance(one, m, {-1});
  ASSERT_TRUE(d_1m.ok());
  EXPECT_LE(lb_1m, *d_1m + 1e-12);  // DTW(1×m) = sqrt(4 + 1 + 9)

  // n×1 mirror.
  double lb_m1 = LbKim(m, one);
  EXPECT_DOUBLE_EQ(lb_m1, std::sqrt(4.0 + 9.0));
  auto d_m1 = DtwDistance(m, one, {-1});
  ASSERT_TRUE(d_m1.ok());
  EXPECT_LE(lb_m1, *d_m1 + 1e-12);

  // 1×1: a single path cell — df and dl are the same cost, so the bound
  // must fall back to max(df, dl) = |a0 - b0| = the exact DTW distance.
  std::vector<double> b1 = {5.0};
  double lb_11 = LbKim(one, b1);
  EXPECT_DOUBLE_EQ(lb_11, 3.0);
  auto d_11 = DtwDistance(one, b1, {0});
  ASSERT_TRUE(d_11.ok());
  EXPECT_DOUBLE_EQ(*d_11, 3.0);
  EXPECT_LE(lb_11, *d_11 + 1e-12);
}

TEST(LowerBoundTest, LbKimAdmissibleOnRandomShortSeries) {
  Rng rng(21);
  const std::pair<size_t, size_t> shapes[] = {
      {1, 1}, {1, 2}, {2, 1}, {1, 5}, {5, 1}, {1, 20}, {20, 1}, {2, 2}};
  for (auto [n, m] : shapes) {
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<double> a(n), b(m);
      for (double& x : a) x = rng.Gaussian();
      for (double& x : b) x = rng.Gaussian();
      double lb = LbKim(a, b);
      auto d = DtwDistance(a, b, {-1});
      ASSERT_TRUE(d.ok());
      EXPECT_LE(lb, *d + 1e-9) << n << "x" << m << " trial " << trial;
    }
  }
}

TEST(LowerBoundTest, SymmetricKeoghAdmissibleAndAtLeastOneSided) {
  Rng rng(23);
  const int kWindow = 5;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(32), b(32);
    for (size_t i = 0; i < 32; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
    }
    Envelope env_a = BuildEnvelope(a, kWindow);
    Envelope env_b = BuildEnvelope(b, kWindow);
    double sym = LbKeoghSymmetric(a, env_a, b, env_b);
    // Dominates both one-sided bounds...
    EXPECT_GE(sym, LbKeogh(a, env_b)) << "trial " << trial;
    EXPECT_GE(sym, LbKeogh(b, env_a)) << "trial " << trial;
    // ...and both directions stay admissible against the symmetric DTW.
    auto d = DtwDistance(a, b, {kWindow});
    ASSERT_TRUE(d.ok());
    EXPECT_LE(sym, *d + 1e-9) << "trial " << trial;
  }
}

TEST(LowerBoundTest, LbKeoghZeroForDifferentLengths) {
  std::vector<double> a = {1, 2, 3};
  Envelope env = BuildEnvelope({1, 2}, 1);
  EXPECT_DOUBLE_EQ(LbKeogh(a, env), 0.0);
}

TEST(CascadeTest, NeverRejectsTrueNeighbors) {
  Rng rng(15);
  const int kWindow = 5;
  CascadingDtw cascade({kWindow});
  int accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> a(24), b(24);
    for (size_t i = 0; i < 24; ++i) {
      a[i] = rng.Gaussian();
      b[i] = a[i] + rng.Gaussian(0, 0.3);
    }
    Envelope env = BuildEnvelope(b, kWindow);
    auto exact = DtwDistance(a, b, {kWindow});
    ASSERT_TRUE(exact.ok());
    double radius = 1.5;
    auto within = cascade.WithinRadius(a, b, env, radius);
    ASSERT_TRUE(within.ok());
    EXPECT_EQ(*within, *exact <= radius) << "trial " << trial;
    if (*within) ++accepted;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(cascade.full_computations(), 0);
}

TEST(CascadeTest, DistanceEqualsPlainDtwWhenNotPruned) {
  Rng rng(25);
  const int kWindow = 5;
  CascadingDtw cascade({kWindow});
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> a(28), b(28);
    for (size_t i = 0; i < 28; ++i) {
      a[i] = rng.Gaussian();
      b[i] = a[i] + rng.Gaussian(0, 0.2);
    }
    Envelope env_a = BuildEnvelope(a, kWindow);
    Envelope env_b = BuildEnvelope(b, kWindow);
    auto exact = DtwDistance(a, b, {kWindow});
    ASSERT_TRUE(exact.ok());
    // No bound: the cascade cannot prune and must return the exact distance.
    auto unbounded = cascade.Distance(a, b, env_b, kNoBound);
    ASSERT_TRUE(unbounded.ok());
    EXPECT_DOUBLE_EQ(*unbounded, *exact) << "trial " << trial;
    // Generous bound, symmetric form: still no pruning, still exact.
    auto bounded = cascade.Distance(a, b, env_b, 1e6, &env_a);
    ASSERT_TRUE(bounded.ok());
    EXPECT_DOUBLE_EQ(*bounded, *exact) << "trial " << trial;
  }
  EXPECT_EQ(cascade.kim_rejections(), 0);
  EXPECT_EQ(cascade.keogh_rejections(), 0);
}

TEST(CascadeTest, SymmetricBoundRejectsWhereOneSidedCannot) {
  // Flat query vs oscillating candidate: the candidate's envelope is wide,
  // so the flat series sits inside it (one-sided bound 0) — but the flat
  // series' envelope is degenerate, so the reverse direction sees the full
  // oscillation and rejects without any DTW.
  const int kWindow = 2;
  std::vector<double> flat(32, 0.0);
  std::vector<double> spiky(32, 0.0);
  for (size_t i = 1; i + 1 < spiky.size(); i += 2) spiky[i] = 3.0;
  Envelope env_flat = BuildEnvelope(flat, kWindow);
  Envelope env_spiky = BuildEnvelope(spiky, kWindow);
  const double radius = 5.0;
  ASSERT_LE(LbKim(flat, spiky), radius);          // Kim can't decide this
  ASSERT_EQ(LbKeogh(flat, env_spiky), 0.0);       // one-sided can't either
  ASSERT_GT(LbKeogh(spiky, env_flat), radius);    // the reverse side can

  CascadingDtw one_sided({kWindow});
  auto d1 = one_sided.Distance(flat, spiky, env_spiky, radius);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(one_sided.full_computations(), 1);

  CascadingDtw symmetric({kWindow});
  auto d2 = symmetric.Distance(flat, spiky, env_spiky, radius, &env_flat);
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(std::isinf(*d2));
  EXPECT_EQ(symmetric.full_computations(), 0);
  EXPECT_EQ(symmetric.stats().keogh_rejections, 1);
  // Both agree on the decision: the true distance really is over the radius.
  auto exact = DtwDistance(flat, spiky, {kWindow});
  ASSERT_TRUE(exact.ok());
  EXPECT_GT(*exact, radius);
}

TEST(CascadeTest, CountersTrackRejections) {
  CascadingDtw cascade({3});
  std::vector<double> a(10, 0.0);
  std::vector<double> far(10, 100.0);
  Envelope env = BuildEnvelope(far, 3);
  auto d = cascade.Distance(a, far, env, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isinf(*d));
  EXPECT_EQ(cascade.kim_rejections(), 1);
  EXPECT_EQ(cascade.full_computations(), 0);
  cascade.ResetCounters();
  EXPECT_EQ(cascade.kim_rejections(), 0);
}

}  // namespace
}  // namespace dbaugur::dtw

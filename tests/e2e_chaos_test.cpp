// Grammar-driven end-to-end chaos harness (tests layer).
//
// ChaosMatrixTest sweeps 200 distinct seeds across the four stream profiles
// through the full RunChaos pipeline — raw log text through SQL2Template,
// pre-parsed events through the production ingest checked against the
// sequential differential reference, the Descender batch/sequential cross-
// check, and the deterministic migrate consumer. ChaosServiceTest adds the
// whole ForecastService (retrains, invariants, save → load → resume
// equality); ChaosReplayTest adds the dbsim replay leg. ChaosCorpusTest
// replays tests/chaos_corpus/corpus.txt, the regression corpus of seeds
// worth keeping. ChaosFaultTest arms fault storms and requires the
// conservation/invariant oracles to hold where exact equality is forfeit.
//
// Every failure message carries the harness repro line ("--seed=N
// --profile=P"), which regenerates the identical stream via
// bench/chaos_soak or a one-line test.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "chaos/oracle.h"
#include "chaos/partition.h"
#include "common/fault_injection.h"
#include "common/hashing.h"
#include "serve/ingestor.h"

namespace dbaugur::chaos {
namespace {

ChaosOptions MatrixOptions(uint64_t seed, StreamProfile profile) {
  ChaosOptions o;
  o.stream.seed = seed;
  o.stream.profile = profile;
  o.stream.bins = 36;
  o.stream.templates = 6;
  o.stream.mean_rate = 2.5;
  return o;
}

void RunSeedRange(StreamProfile profile, uint64_t first_seed, uint64_t seeds,
                  size_t shards = 1) {
  for (uint64_t s = first_seed; s < first_seed + seeds; ++s) {
    ChaosOptions o = MatrixOptions(s, profile);
    o.service_shards = shards;
    ChaosReport r = RunChaos(o);
    ASSERT_TRUE(r.ok) << r.Summary();
  }
}

// --- the 200-seed deterministic matrix (50 per profile) ---------------------

TEST(ChaosMatrixTest, Steady) {
  // The steady profile runs the sharded leg too: every seed's stream through
  // a 3-shard ShardedForecastService, checked against the single-stream
  // sequential reference (CompareShardedIngest).
  RunSeedRange(StreamProfile::kSteady, 1000, 50, /*shards=*/3);
}

TEST(ChaosMatrixTest, TemplateChurn) {
  RunSeedRange(StreamProfile::kTemplateChurn, 1050, 50);
}

TEST(ChaosMatrixTest, BurstySkewed) {
  // Sharded leg with skewed/duplicate timestamps: when the reference stream
  // trips the global stale cutoff the exact oracle self-gates (per-shard
  // lateness watermarks legitimately diverge) but conservation and per-shard
  // snapshot invariants must still hold for every seed.
  RunSeedRange(StreamProfile::kBurstySkewed, 1100, 50, /*shards=*/2);
}

TEST(ChaosMatrixTest, MalformedHeavy) {
  RunSeedRange(StreamProfile::kMalformedHeavy, 1150, 50);
}

// --- stream generator properties -------------------------------------------

TEST(ChaosStreamTest, DeterministicInSeedAndProfile) {
  StreamOptions o;
  o.seed = 77;
  o.profile = StreamProfile::kBurstySkewed;
  o.bins = 24;
  o.templates = 8;
  GeneratedStream a = GenerateStream(o);
  GeneratedStream b = GenerateStream(o);
  ASSERT_EQ(a.items.size(), b.items.size());
  EXPECT_EQ(a.Text(), b.Text());
  EXPECT_EQ(a.truth.well_formed, b.truth.well_formed);
  EXPECT_EQ(a.truth.skewed_events, b.truth.skewed_events);
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].timestamp, b.items[i].timestamp) << i;
    EXPECT_EQ(a.items[i].line, b.items[i].line) << i;
  }
  o.seed = 78;
  GeneratedStream c = GenerateStream(o);
  EXPECT_NE(a.Text(), c.Text());
}

TEST(ChaosStreamTest, MalformedHeavyCoversEveryRejectClass) {
  StreamOptions o;
  o.seed = 5;
  o.profile = StreamProfile::kMalformedHeavy;
  o.bins = 48;
  o.templates = 8;
  GeneratedStream s = GenerateStream(o);
  EXPECT_GT(s.truth.well_formed, 0u);
  EXPECT_GT(s.truth.malformed_no_sql, 0u);
  EXPECT_GT(s.truth.malformed_bad_timestamp, 0u);
  EXPECT_GT(s.truth.bad_statements, 0u);
  EXPECT_GT(s.truth.bad_template_events, 0u);
}

TEST(ChaosStreamTest, BurstySkewedCoversSkewAndDuplicates) {
  StreamOptions o;
  o.seed = 9;
  o.profile = StreamProfile::kBurstySkewed;
  o.bins = 48;
  o.templates = 8;
  GeneratedStream s = GenerateStream(o);
  EXPECT_GT(s.truth.skewed_events, 0u);
  EXPECT_GT(s.truth.bad_template_events, 0u);
  EXPECT_GT(s.truth.duplicate_timestamps, 0u);
}

TEST(ChaosStreamTest, TemplateChurnSchedulesBirthsAndDeaths) {
  StreamOptions o;
  o.seed = 3;
  o.profile = StreamProfile::kTemplateChurn;
  o.bins = 48;
  o.templates = 8;
  GeneratedStream s = GenerateStream(o);
  bool any_churn = false;
  for (size_t slot = 0; slot < s.truth.birth_bin.size(); ++slot) {
    if (s.truth.birth_bin[slot] > 0 || s.truth.death_bin[slot] < o.bins) {
      any_churn = true;
    }
    EXPECT_LE(s.truth.birth_bin[slot], s.truth.death_bin[slot]) << slot;
  }
  EXPECT_TRUE(any_churn);
}

TEST(ChaosStreamTest, ProfileNamesRoundTrip) {
  for (StreamProfile p : AllProfiles()) {
    auto parsed = ParseProfile(ProfileName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseProfile("no-such-profile").ok());
}

// --- full-service and replay legs -------------------------------------------

ChaosOptions ServiceOptions(uint64_t seed, StreamProfile profile) {
  ChaosOptions o;
  o.stream.seed = seed;
  o.stream.profile = profile;
  o.stream.bins = 28;
  o.stream.templates = 4;
  o.stream.mean_rate = 2.0;
  o.full_service = true;
  return o;
}

TEST(ChaosServiceTest, SteadyFullServiceWithResumeEquality) {
  for (uint64_t seed : {2000u, 2001u}) {
    ChaosReport r = RunChaos(ServiceOptions(seed, StreamProfile::kSteady));
    ASSERT_TRUE(r.ok) << r.Summary();
  }
}

TEST(ChaosServiceTest, TemplateChurnFullService) {
  for (uint64_t seed : {2010u, 2011u}) {
    ChaosReport r =
        RunChaos(ServiceOptions(seed, StreamProfile::kTemplateChurn));
    ASSERT_TRUE(r.ok) << r.Summary();
  }
}

TEST(ChaosServiceTest, BurstySkewedFullServiceHoldsInvariants) {
  // Resume equality is skipped for this profile (the ingest lateness
  // reference is in-memory state); conservation and snapshot invariants
  // must still hold.
  ChaosReport r = RunChaos(ServiceOptions(2020, StreamProfile::kBurstySkewed));
  ASSERT_TRUE(r.ok) << r.Summary();
}

TEST(ChaosReplayTest, EveryProfileReplaysDeterministically) {
  uint64_t seed = 3000;
  for (StreamProfile p : AllProfiles()) {
    ChaosOptions o;
    o.stream.seed = seed++;
    o.stream.profile = p;
    o.stream.bins = 24;
    o.stream.templates = 6;
    o.stream.mean_rate = 2.0;
    o.replay = true;
    ChaosReport r = RunChaos(o);
    ASSERT_TRUE(r.ok) << r.Summary();
  }
}

// --- seed-corpus regression replay ------------------------------------------

struct CorpusEntry {
  uint64_t seed = 0;
  StreamProfile profile = StreamProfile::kSteady;
  bool full = false;
  bool replay = false;
  size_t shards = 1;
  size_t workers = 1;
  double deadline_seconds = 0.0;
  size_t budget = 0;
  size_t line = 0;
};

std::vector<CorpusEntry> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open corpus: " << path;
  std::vector<CorpusEntry> entries;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    CorpusEntry e;
    e.line = lineno;
    std::string profile_name;
    if (!(fields >> e.seed >> profile_name)) continue;  // blank/comment line
    auto profile = ParseProfile(profile_name);
    EXPECT_TRUE(profile.ok())
        << "corpus line " << lineno << ": " << profile.status().message();
    if (!profile.ok()) continue;
    e.profile = *profile;
    std::string flag;
    bool bad_flag = false;
    while (fields >> flag) {
      if (flag == "full") {
        e.full = true;
      } else if (flag == "replay") {
        e.replay = true;
      } else if (flag.rfind("shards=", 0) == 0) {
        e.shards = static_cast<size_t>(
            std::strtoull(flag.c_str() + 7, nullptr, 10));
        if (e.shards < 2) {
          ADD_FAILURE() << "corpus line " << lineno << ": shards=" << e.shards
                        << " (needs >= 2 to run the sharded leg)";
          bad_flag = true;
        }
      } else if (flag.rfind("workers=", 0) == 0) {
        e.workers = static_cast<size_t>(
            std::strtoull(flag.c_str() + 8, nullptr, 10));
        if (e.workers < 1) {
          ADD_FAILURE() << "corpus line " << lineno << ": workers=0";
          bad_flag = true;
        }
      } else if (flag.rfind("deadline=", 0) == 0) {
        e.deadline_seconds = std::strtod(flag.c_str() + 9, nullptr);
      } else if (flag.rfind("budget=", 0) == 0) {
        e.budget = static_cast<size_t>(
            std::strtoull(flag.c_str() + 7, nullptr, 10));
      } else {
        ADD_FAILURE() << "corpus line " << lineno << ": unknown flag '" << flag
                      << "'";
        bad_flag = true;
      }
    }
    if (!bad_flag) entries.push_back(e);
  }
  return entries;
}

TEST(ChaosCorpusTest, ReplaysEverySeedInTheCorpus) {
  const std::vector<CorpusEntry> corpus = LoadCorpus(DBAUGUR_CHAOS_CORPUS);
  ASSERT_FALSE(corpus.empty());
  for (const CorpusEntry& e : corpus) {
    ChaosOptions o = MatrixOptions(e.seed, e.profile);
    o.full_service = e.full;
    o.replay = e.replay;
    o.service_shards = e.shards;
    o.service_workers = e.workers;
    o.retrain_deadline_seconds = e.deadline_seconds;
    o.retrain_budget = e.budget;
    ChaosReport r = RunChaos(o);
    EXPECT_TRUE(r.ok) << "corpus line " << e.line << ": " << r.Summary();
  }
}

// --- fault storms ------------------------------------------------------------

class ChaosFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override {
    // Re-arm an externally provided spec (ctest runs one process per test,
    // but keep the fixture safe under manual --gtest_filter batching too).
    const char* env = std::getenv("DBAUGUR_FAULT_SPEC");
    if (env != nullptr && *env != '\0') {
      ASSERT_TRUE(fault::Configure(env).ok());
    } else {
      fault::Reset();
    }
  }
};

TEST_F(ChaosFaultTest, IngestCorruptionStormHoldsConservation) {
  ASSERT_TRUE(fault::Configure("serve.ingest.corrupt=at:3,10,77").ok());
  ChaosReport r =
      RunChaos(MatrixOptions(4242, StreamProfile::kBurstySkewed));
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST_F(ChaosFaultTest, ShardedLegHoldsConservationUnderStorm) {
  // Exact sharded equality is forfeit under an armed storm (the oracle
  // self-gates); per-shard conservation and snapshot invariants must survive.
  ASSERT_TRUE(fault::Configure("serve.ingest.corrupt=at:2,9,31;"
                               "serve.retrain.build=at:1")
                  .ok());
  ChaosOptions o = MatrixOptions(4245, StreamProfile::kSteady);
  o.service_shards = 3;
  ChaosReport r = RunChaos(o);
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST_F(ChaosFaultTest, RetrainStormKeepsServiceInvariants) {
  ASSERT_TRUE(fault::Configure("serve.retrain.build=at:1;"
                               "serve.retrain.diverge=at:2;"
                               "serve.ingest.corrupt=p:0.1:7")
                  .ok());
  ChaosReport r = RunChaos(ServiceOptions(4243, StreamProfile::kSteady));
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST_F(ChaosFaultTest, HangStormWatchdogKeepsShardedLegLive) {
  // Every retrain hangs at the serve.retrain.hang site (n:100 fires on every
  // hit, so the storm is deterministic at any worker count). The watchdog
  // must cancel each one within its 50ms deadline: the run completes, hung
  // shards keep serving their last-good (generation-0) snapshots, and router
  // conservation still balances.
  ASSERT_TRUE(fault::Configure("serve.retrain.hang=n:100").ok());
  ChaosOptions o = MatrixOptions(4246, StreamProfile::kSteady);
  o.service_shards = 3;
  o.service_workers = 2;
  o.retrain_deadline_seconds = 0.05;
  ChaosReport r = RunChaos(o);
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST_F(ChaosFaultTest, SlowStormUnderWideDeadlineCompletes) {
  // A few ~200ms retrains under a deadline wide enough that the watchdog
  // stays quiet: the storm slows cycles down but every invariant — and the
  // no-spurious-failure property — must survive.
  ASSERT_TRUE(fault::Configure("serve.retrain.slow=at:0,3").ok());
  ChaosOptions o = MatrixOptions(4247, StreamProfile::kBurstySkewed);
  o.service_shards = 2;
  o.service_workers = 2;
  o.retrain_deadline_seconds = 30.0;
  ChaosReport r = RunChaos(o);
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST_F(ChaosFaultTest, OverloadUnitBudgetBacklogHoldsInvariants) {
  // No faults (the fixture's SetUp disarms any env storm): a unit per-cycle
  // budget forces the scheduler to carry a
  // backlog across cycles (driving the overload controller), while the leg's
  // conservation and per-shard snapshot invariants must still hold. The
  // exact ingest oracle self-gates on bounded budgets (unscheduled shards'
  // queues stay undrained at the end of the run).
  ChaosOptions o = MatrixOptions(4248, StreamProfile::kSteady);
  o.service_shards = 3;
  o.service_workers = 2;
  o.retrain_budget = 1;
  ChaosReport r = RunChaos(o);
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST_F(ChaosFaultTest, EnvArmedStormRunsFullPipeline) {
  const char* env = std::getenv("DBAUGUR_FAULT_SPEC");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "DBAUGUR_FAULT_SPEC not set";
  }
  ASSERT_TRUE(fault::Configure(env).ok());
  ChaosOptions o = MatrixOptions(4244, StreamProfile::kMalformedHeavy);
  o.full_service = true;
  ChaosReport r = RunChaos(o);
  EXPECT_TRUE(r.ok) << r.Summary();
}

// --- oracles and reporting, exercised directly ------------------------------

TEST(ChaosOracleTest, CompareIngestCatchesABinDivergence) {
  std::vector<serve::TraceEvent> events;
  for (uint32_t i = 0; i < 6; ++i) {
    events.push_back({i % 2, static_cast<ts::Timestamp>(i * 100), 2.0});
  }
  serve::TraceIngestor ing(serve::IngestorOptions{64, 16});
  serve::TraceBinner bin(600);
  std::vector<serve::TraceEvent> drained;
  for (const serve::TraceEvent& e : events) ASSERT_TRUE(ing.Offer(e));
  ing.Drain(&drained);
  for (const serve::TraceEvent& e : drained) bin.Fold(e);
  ReferenceOptions ropts;
  ropts.max_templates = 16;
  const ReferenceResult ref = RunSequentialReference(events, ropts);
  ASSERT_TRUE(CompareIngest(ref, ing, bin).ok());
  // One extra fold makes the production history diverge from the reference.
  bin.Fold({0, 0, 1.0});
  Status st = CompareIngest(ref, ing, bin);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("differential mismatch"), std::string::npos)
      << st.message();
}

TEST(ChaosOracleTest, CompareShardedIngestCatchesRoutingAndBinDivergence) {
  std::vector<serve::TraceEvent> events;
  for (uint32_t i = 0; i < 8; ++i) {
    events.push_back({i % 4, static_cast<ts::Timestamp>(i * 100), 3.0});
  }
  ReferenceOptions ropts;
  ropts.max_templates = 16;
  const ReferenceResult ref = RunSequentialReference(events, ropts);

  // Distribute the reference's own bins onto the shards the routing hash
  // names: by construction this must compare equal.
  const size_t kShards = 2;
  std::vector<ShardIngestView> views(kShards);
  for (const auto& [tmpl, bins] : ref.bins) {
    ShardIngestView& v = views[ShardOfKey(tmpl, kShards)];
    v.bins[tmpl] = bins;
    for (const auto& [bin, count] : bins) {
      (void)bin;
      v.accepted += static_cast<uint64_t>(count / 3.0);
    }
  }
  ASSERT_TRUE(CompareShardedIngest(ref, views).ok());

  // A template binned on the wrong shard is a routing violation.
  {
    std::vector<ShardIngestView> bad = views;
    const uint32_t tmpl = ref.bins.begin()->first;
    const size_t owner = ShardOfKey(tmpl, kShards);
    bad[1 - owner].bins[tmpl] = bad[owner].bins[tmpl];
    bad[owner].bins.erase(tmpl);
    Status st = CompareShardedIngest(ref, bad);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("routing"), std::string::npos) << st.message();
  }

  // A diverging binned value on the owning shard is caught by name.
  {
    std::vector<ShardIngestView> bad = views;
    const uint32_t tmpl = ref.bins.begin()->first;
    bad[ShardOfKey(tmpl, kShards)].bins[tmpl].begin()->second += 1.0;
    Status st = CompareShardedIngest(ref, bad);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("template " + std::to_string(tmpl)),
              std::string::npos)
        << st.message();
  }

  // Losing an accepted event breaks the accepted-sum check.
  {
    std::vector<ShardIngestView> bad = views;
    bad[0].accepted -= 1;
    bad[0].bins.clear();  // keep the union check from firing first
    bad[1].bins.clear();
    Status st = CompareShardedIngest(ref, bad);
    EXPECT_FALSE(st.ok());
  }
}

TEST(ChaosOracleTest, ConservationCountsEveryOfferExactlyOnce) {
  serve::TraceIngestor ing(serve::IngestorOptions{2, 4});
  ing.Offer({0, 0, 1.0});
  ing.Offer({9, 0, 1.0});   // bad template id
  ing.Offer({1, 0, -1.0});  // negative count
  ing.Offer({1, 10, 1.0});
  ing.Offer({1, 20, 1.0});  // queue full (capacity 2)
  EXPECT_TRUE(CheckIngestConservation(5, ing).ok());
  EXPECT_FALSE(CheckIngestConservation(6, ing).ok());
}

TEST(ChaosReportTest, SummaryCarriesReproAndWindow) {
  ChaosReport ok_report;
  ok_report.repro = "--seed=7 --profile=steady";
  EXPECT_NE(ok_report.Summary().find("--seed=7"), std::string::npos);

  ChaosReport bad;
  bad.ok = false;
  bad.stage = "events";
  bad.failure = "differential mismatch: demo";
  bad.repro = "--seed=9 --profile=bursty-skewed";
  bad.window = FormatEventWindow({{1, 100, 1.0}, {2, 200, 1.0}}, 2, 8);
  const std::string s = bad.Summary();
  EXPECT_NE(s.find("stage events"), std::string::npos) << s;
  EXPECT_NE(s.find("--seed=9 --profile=bursty-skewed"), std::string::npos);
  EXPECT_NE(s.find("template=2"), std::string::npos) << s;
}

TEST(ChaosReportTest, FailuresReproduceFromTheirReproLine) {
  // Determinism behind the repro contract: identical options produce
  // identical reports (and identical streams).
  ChaosOptions o = MatrixOptions(1234, StreamProfile::kMalformedHeavy);
  ChaosReport a = RunChaos(o);
  ChaosReport b = RunChaos(o);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.repro, b.repro);
  EXPECT_EQ(GenerateStream(o.stream).Text(), GenerateStream(o.stream).Text());
}

TEST(ChaosMinimizeTest, FindsTheMonotoneBoundary) {
  size_t calls = 0;
  size_t got = MinimizeFailingPrefix(1000, [&](size_t n) {
    ++calls;
    return n >= 637;
  });
  EXPECT_EQ(got, 637u);
  EXPECT_LT(calls, 30u);  // binary search, not a linear scan
}

TEST(ChaosMinimizeTest, FallsBackOnNonMonotonePredicates) {
  // Fails only at exactly 5: bisection's assumption breaks, the linear
  // fallback must still find it.
  EXPECT_EQ(MinimizeFailingPrefix(100, [](size_t n) { return n == 5; }), 5u);
  EXPECT_EQ(MinimizeFailingPrefix(8, [](size_t) { return true; }), 1u);
  EXPECT_EQ(MinimizeFailingPrefix(0, [](size_t) { return true; }), 0u);
}

TEST(ChaosPartitionTest, AcceptsRelabeledPartitions) {
  EXPECT_TRUE(PartitionsEquivalent({0, 0, 1, 2}, {5, 5, 9, 7}));
  EXPECT_TRUE(PartitionsEquivalent({}, {}));
}

TEST(ChaosPartitionTest, RejectsDifferentGroupings) {
  std::string why;
  EXPECT_FALSE(PartitionsEquivalent({0, 0, 1}, {0, 1, 1}, &why));
  EXPECT_FALSE(why.empty());
  why.clear();
  EXPECT_FALSE(PartitionsEquivalent({0, 1}, {0, 0}, &why));
  EXPECT_NE(why.find("maps to both"), std::string::npos) << why;
  why.clear();
  EXPECT_FALSE(PartitionsEquivalent({0, 1}, {0}, &why));
  EXPECT_NE(why.find("size mismatch"), std::string::npos) << why;
}

}  // namespace
}  // namespace dbaugur::chaos

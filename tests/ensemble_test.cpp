// Tests for the time-sensitive ensemble (Eq. 7-8), QB5000, and the online
// evaluation harness.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ensemble/presets.h"
#include "ensemble/time_sensitive_ensemble.h"
#include "ts/metrics.h"

namespace dbaugur::ensemble {
namespace {

// A stub member with a fixed additive bias: prediction = next-window-naive
// (last value) + bias. Lets us control per-member error exactly.
class BiasedNaive : public models::Forecaster {
 public:
  explicit BiasedNaive(double bias) : bias_(bias) {}
  Status Fit(const std::vector<double>&) override { return Status::OK(); }
  StatusOr<double> Predict(const std::vector<double>& window) const override {
    return window.back() + bias_;
  }
  std::string name() const override { return "BiasedNaive"; }
  int64_t StorageBytes() const override { return 8; }

 private:
  double bias_;
};

models::ForecasterOptions SmallOpts() {
  models::ForecasterOptions o;
  o.window = 8;
  o.horizon = 1;
  o.epochs = 5;
  return o;
}

std::vector<double> ConstSeries(size_t n, double v) {
  return std::vector<double>(n, v);
}

TEST(EnsembleTest, EqualWeightsBeforeAnyObservation) {
  TimeSensitiveEnsemble ens(SmallOpts(), {0.9, true});
  ens.AddMember(std::make_unique<BiasedNaive>(0.0));
  ens.AddMember(std::make_unique<BiasedNaive>(1.0));
  ens.AddMember(std::make_unique<BiasedNaive>(2.0));
  ASSERT_TRUE(ens.Fit(ConstSeries(20, 5.0)).ok());
  auto w = ens.CurrentWeights();
  ASSERT_EQ(w.size(), 3u);
  for (double wi : w) EXPECT_DOUBLE_EQ(wi, 1.0 / 3.0);
  // Prediction = mean of 5, 6, 7.
  auto p = ens.Predict(ConstSeries(8, 5.0));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 6.0, 1e-12);
}

TEST(EnsembleTest, WeightsShiftTowardAccurateMember) {
  TimeSensitiveEnsemble ens(SmallOpts(), {0.9, true});
  ens.AddMember(std::make_unique<BiasedNaive>(0.0));  // perfect on const series
  ens.AddMember(std::make_unique<BiasedNaive>(3.0));
  ASSERT_TRUE(ens.Fit(ConstSeries(20, 5.0)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ens.Observe(ConstSeries(8, 5.0), 5.0).ok());
  }
  auto w = ens.CurrentWeights();
  EXPECT_GT(w[0], 0.95);
  EXPECT_LT(w[1], 0.05);
  double sum = w[0] + w[1];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  auto p = ens.Predict(ConstSeries(8, 5.0));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 5.0, 0.2);
}

TEST(EnsembleTest, WeightsMatchEquation8ForThreeMembers) {
  TimeSensitiveEnsemble ens(SmallOpts(), {0.9, true});
  ens.AddMember(std::make_unique<BiasedNaive>(1.0));
  ens.AddMember(std::make_unique<BiasedNaive>(2.0));
  ens.AddMember(std::make_unique<BiasedNaive>(3.0));
  ASSERT_TRUE(ens.Fit(ConstSeries(20, 0.0)).ok());
  ASSERT_TRUE(ens.Observe(ConstSeries(8, 0.0), 0.0).ok());
  // Errors: 1, 4, 9. Gammas after one step equal the squared errors.
  const auto& g = ens.Distances();
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 4.0);
  EXPECT_DOUBLE_EQ(g[2], 9.0);
  auto w = ens.CurrentWeights();
  double sum = 14.0;
  EXPECT_NEAR(w[0], (sum - 1.0) / (2 * sum), 1e-12);
  EXPECT_NEAR(w[1], (sum - 4.0) / (2 * sum), 1e-12);
  EXPECT_NEAR(w[2], (sum - 9.0) / (2 * sum), 1e-12);
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
}

TEST(EnsembleTest, AttenuationForgetsOldErrors) {
  // Member 0 starts bad then becomes perfect; with delta < 1 its weight must
  // recover.
  TimeSensitiveEnsemble ens(SmallOpts(), {0.5, true});
  ens.AddMember(std::make_unique<BiasedNaive>(0.0));
  ens.AddMember(std::make_unique<BiasedNaive>(1.0));
  ASSERT_TRUE(ens.Fit(ConstSeries(20, 0.0)).ok());
  // Phase 1: feed actuals equal to member-1's prediction (member 0 is wrong).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ens.Observe(ConstSeries(8, 0.0), 1.0).ok());
  }
  double w0_bad = ens.CurrentWeights()[0];
  EXPECT_LT(w0_bad, 0.5);
  // Phase 2: actuals now equal member-0's prediction.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(ens.Observe(ConstSeries(8, 0.0), 0.0).ok());
  }
  double w0_recovered = ens.CurrentWeights()[0];
  EXPECT_GT(w0_recovered, 0.5);
}

TEST(EnsembleTest, FixedModeKeepsEqualWeights) {
  TimeSensitiveEnsemble ens(SmallOpts(), {0.9, false});
  ens.AddMember(std::make_unique<BiasedNaive>(0.0));
  ens.AddMember(std::make_unique<BiasedNaive>(2.0));
  ASSERT_TRUE(ens.Fit(ConstSeries(20, 0.0)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ens.Observe(ConstSeries(8, 0.0), 0.0).ok());
  }
  auto w = ens.CurrentWeights();
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST(EnsembleTest, GuardsAndErrors) {
  TimeSensitiveEnsemble empty(SmallOpts(), {0.9, true});
  EXPECT_FALSE(empty.Fit(ConstSeries(20, 0.0)).ok());
  TimeSensitiveEnsemble ens(SmallOpts(), {0.9, true});
  ens.AddMember(std::make_unique<BiasedNaive>(0.0));
  EXPECT_FALSE(ens.Predict(ConstSeries(8, 0.0)).ok());
  EXPECT_FALSE(ens.Observe(ConstSeries(8, 0.0), 1.0).ok());
}

TEST(EnsembleTest, DynamicBeatsWorstMemberOnRegimeShift) {
  // Series whose behaviour changes mid-stream: dynamic weighting should track
  // whichever member currently fits.
  Rng rng(44);
  std::vector<double> series;
  for (int i = 0; i < 300; ++i) series.push_back(10.0 + rng.Gaussian(0, 0.05));
  for (int i = 0; i < 300; ++i) {
    series.push_back(10.0 + 0.05 * i + rng.Gaussian(0, 0.05));
  }
  models::ForecasterOptions opts = SmallOpts();
  TimeSensitiveEnsemble dyn(opts, {0.9, true});
  dyn.AddMember(std::make_unique<BiasedNaive>(0.0));   // good on flat part
  dyn.AddMember(std::make_unique<BiasedNaive>(0.05));  // good on trend part
  ASSERT_TRUE(dyn.Fit(series).ok());
  auto eval = EvaluateOnline(dyn, series, 350, opts.window, opts.horizon);
  ASSERT_TRUE(eval.ok());
  double dyn_mse = *ts::MSE(eval->predicted, eval->actual);
  // Worst single member on the trend region is the zero-bias one.
  double naive_mse = 0.0;
  size_t count = 0;
  for (size_t t = 350; t < series.size(); ++t) {
    double e = series[t - 1] - series[t];
    naive_mse += e * e;
    ++count;
  }
  naive_mse /= static_cast<double>(count);
  EXPECT_LT(dyn_mse, naive_mse);
}

TEST(PresetsTest, DBAugurHasPaperMembers) {
  auto ens = MakeDBAugur(SmallOpts());
  ASSERT_TRUE(ens.ok());
  ASSERT_EQ((*ens)->member_count(), 3u);
  EXPECT_EQ((*ens)->member(0).name(), "WFGAN");
  EXPECT_EQ((*ens)->member(1).name(), "TCN");
  EXPECT_EQ((*ens)->member(2).name(), "MLP");
  EXPECT_EQ((*ens)->name(), "DBAugurEnsemble");
}

TEST(PresetsTest, QB5000HasPaperMembers) {
  auto ens = MakeQB5000(SmallOpts());
  ASSERT_TRUE(ens.ok());
  ASSERT_EQ((*ens)->member_count(), 3u);
  EXPECT_EQ((*ens)->member(0).name(), "LR");
  EXPECT_EQ((*ens)->member(1).name(), "LSTM");
  EXPECT_EQ((*ens)->member(2).name(), "KR");
  EXPECT_EQ((*ens)->name(), "FixedEnsemble");
}

TEST(EnsembleTest, SaveStateBeforeFitFails) {
  auto ens = MakeDBAugur(SmallOpts());
  ASSERT_TRUE(ens.ok());
  EXPECT_FALSE((*ens)->SaveState().ok());
}

TEST(EnsembleTest, StateRoundTripRestoresForecastsAndWeights) {
  models::ForecasterOptions opts = SmallOpts();
  opts.epochs = 2;
  Rng rng(7);
  std::vector<double> series(80);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 10 + 5 * std::sin(static_cast<double>(i) * 0.4) +
                rng.Gaussian(0, 0.1);
  }
  auto ens = MakeDBAugur(opts);
  ASSERT_TRUE(ens.ok());
  ASSERT_TRUE((*ens)->Fit(series).ok());
  // Accumulate some error history so Γ is non-trivial.
  std::vector<double> w(series.end() - 8, series.end());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*ens)->Predict(w).ok());
    ASSERT_TRUE((*ens)->Observe(w, series.back() + i).ok());
  }
  auto blob = (*ens)->SaveState();
  ASSERT_TRUE(blob.ok());

  auto restored = MakeDBAugur(opts);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->LoadState(*blob).ok());
  // Γ histories (and hence weights) restore exactly.
  EXPECT_EQ((*ens)->Distances(), (*restored)->Distances());
  EXPECT_EQ((*ens)->CurrentWeights(), (*restored)->CurrentWeights());
  // Forecasts are bit-identical (float64 member states).
  auto a = (*ens)->Predict(w);
  auto b = (*restored)->Predict(w);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(EnsembleTest, LoadStateRejectsCorruptAndMismatchedBlobs) {
  models::ForecasterOptions opts = SmallOpts();
  opts.epochs = 1;
  std::vector<double> series(60, 5.0);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] += std::sin(static_cast<double>(i));
  }
  auto ens = MakeDBAugur(opts);
  ASSERT_TRUE(ens.ok());
  ASSERT_TRUE((*ens)->Fit(series).ok());
  auto blob = (*ens)->SaveState();
  ASSERT_TRUE(blob.ok());

  auto target = MakeDBAugur(opts);
  ASSERT_TRUE(target.ok());
  // Bad magic.
  std::vector<uint8_t> bad = *blob;
  bad[0] ^= 0xFF;
  EXPECT_FALSE((*target)->LoadState(bad).ok());
  // Truncated.
  std::vector<uint8_t> cut(blob->begin(), blob->begin() + 12);
  EXPECT_FALSE((*target)->LoadState(cut).ok());
  // Member-name mismatch: byte 12 is the first character of the first
  // member's name (after magic, count, and the name's length prefix).
  std::vector<uint8_t> renamed = *blob;
  renamed[12] ^= 0x01;
  EXPECT_FALSE((*target)->LoadState(renamed).ok());
}

TEST(PresetsTest, EndToEndOnSine) {
  models::ForecasterOptions opts;
  opts.window = 24;
  opts.horizon = 1;
  opts.epochs = 10;
  Rng rng(45);
  std::vector<double> series(600);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 10 + 5 * std::sin(2 * M_PI * static_cast<double>(i) / 48.0) +
                rng.Gaussian(0, 0.1);
  }
  auto ens = MakeDBAugur(opts);
  ASSERT_TRUE(ens.ok());
  ASSERT_TRUE((*ens)->Fit(std::vector<double>(series.begin(),
                                              series.begin() + 420)).ok());
  auto eval = EvaluateOnline(**ens, series, 420, opts.window, opts.horizon);
  ASSERT_TRUE(eval.ok());
  double mse = *ts::MSE(eval->predicted, eval->actual);
  EXPECT_LT(mse, 2.0);  // signal variance 12.5
}

}  // namespace
}  // namespace dbaugur::ensemble

#!/usr/bin/env python3
"""Self-tests for tools/lint.py.

Each rule gets one violating and one clean fixture, written into a temp-dir
mini-repo (src/, tests/, src/nn/ as needed) so directory scoping is exercised
for real. Exit codes are pinned: 0 clean, 1 violations, 2 usage error.

Run directly (`python3 tests/lint_test.py`) or via ctest.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "lint.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
import lint  # noqa: E402  (path set up just above)


class FixtureRepo:
    """A throwaway repo root with helpers to drop files and run the linter."""

    def __init__(self, tmpdir):
        self.root = tmpdir

    def write(self, relpath, text):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def run(self, *targets, allowlist=None):
        cmd = [sys.executable, LINT, "--root", self.root]
        if allowlist is not None:
            cmd += ["--allowlist", os.path.join(self.root, allowlist)]
        else:
            # Point at a nonexistent file so the real repo allowlist never
            # leaks into fixture runs.
            cmd += ["--allowlist", os.path.join(self.root, "no_allowlist.txt")]
        cmd += list(targets)
        return subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )


class LintRuleTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.repo = FixtureRepo(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def assert_violation(self, result, rule_id, relpath):
        self.assertEqual(
            result.returncode, 1,
            f"expected exit 1, got {result.returncode}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}",
        )
        self.assertIn(f"[{rule_id}]", result.stdout)
        self.assertIn(relpath, result.stdout)

    def assert_clean(self, result):
        self.assertEqual(
            result.returncode, 0,
            f"expected exit 0, got {result.returncode}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}",
        )
        self.assertEqual(result.stdout, "")

    # -- bare-assert --------------------------------------------------------

    def test_bare_assert_violating(self):
        self.repo.write(
            "src/a.cpp",
            "#include <cassert>\nvoid F(int x) { assert(x > 0); }\n",
        )
        self.assert_violation(self.repo.run("src"), "bare-assert", "src/a.cpp")

    def test_bare_assert_clean(self):
        self.repo.write(
            "src/a.cpp",
            "// assert() is banned; DBAUGUR_CHECK survives -DNDEBUG.\n"
            "static_assert(sizeof(int) == 4);\n"
            'void F(int x) { DBAUGUR_CHECK(x > 0, "x"); }\n'
            "void G() { my_assert(1); }\n",
        )
        self.assert_clean(self.repo.run("src"))

    def test_bare_assert_in_string_literal_is_ignored(self):
        self.repo.write(
            "src/a.cpp",
            'const char* kMsg = "call assert(x) here";\n',
        )
        self.assert_clean(self.repo.run("src"))

    # -- nondeterminism -----------------------------------------------------

    def test_nondeterminism_violating(self):
        self.repo.write(
            "src/a.cpp",
            "#include <cstdlib>\nint Draw() { return std::rand(); }\n",
        )
        self.assert_violation(
            self.repo.run("src"), "nondeterminism", "src/a.cpp"
        )

    def test_nondeterminism_time_and_clock(self):
        self.repo.write(
            "src/a.cpp",
            "#include <chrono>\n"
            "auto T() { return std::chrono::system_clock::now(); }\n"
            "long U() { return time(nullptr); }\n",
        )
        result = self.repo.run("src")
        self.assertEqual(result.returncode, 1)
        self.assertIn("system_clock::now()", result.stdout)
        self.assertIn("time(nullptr)", result.stdout)

    def test_nondeterminism_scoped_to_src(self):
        # The same construct in tests/ is fine — only src/ must be replayable.
        self.repo.write(
            "tests/a_test.cpp",
            "#include <random>\nstd::random_device rd;\n",
        )
        self.assert_clean(self.repo.run("tests"))

    def test_nondeterminism_clean(self):
        self.repo.write(
            "src/a.cpp",
            "// steady_clock is monotonic and allowed for durations.\n"
            "#include <chrono>\n"
            "auto T() { return std::chrono::steady_clock::now(); }\n"
            "int Rand() { return 4; }\n",
        )
        self.assert_clean(self.repo.run("src"))

    # -- atomic-shared-ptr --------------------------------------------------

    def test_atomic_shared_ptr_violating(self):
        self.repo.write(
            "src/a.h",
            "#include <atomic>\n#include <memory>\n"
            "std::atomic<std::shared_ptr<int>> g_ptr;\n",
        )
        self.assert_violation(
            self.repo.run("src"), "atomic-shared-ptr", "src/a.h"
        )

    def test_atomic_shared_ptr_clean(self):
        self.repo.write(
            "src/a.h",
            "#include <atomic>\n#include <memory>\n"
            "std::atomic<int> g_count;\nstd::shared_ptr<int> g_ptr;\n",
        )
        self.assert_clean(self.repo.run("src"))

    # -- raw-sync -----------------------------------------------------------

    def test_raw_sync_mutex_violating(self):
        self.repo.write(
            "src/serve/a.cpp",
            "#include <mutex>\n"
            "std::mutex g_mu;\n"
            "void F() { std::lock_guard<std::mutex> lock(g_mu); }\n",
        )
        self.assert_violation(self.repo.run("src"), "raw-sync", "src/serve/a.cpp")

    def test_raw_sync_condition_variable_violating(self):
        self.repo.write(
            "tests/a_test.cpp",
            "#include <condition_variable>\n"
            "std::condition_variable g_cv;\n",
        )
        self.assert_violation(
            self.repo.run("tests"), "raw-sync", "tests/a_test.cpp"
        )

    def test_raw_sync_wrapper_header_exempt(self):
        self.repo.write(
            "src/common/mutex.h",
            "#include <mutex>\n"
            "class Mutex { std::mutex mu_; };\n",
        )
        self.assert_clean(self.repo.run("src"))

    def test_raw_sync_clean(self):
        self.repo.write(
            "src/serve/a.cpp",
            "// A comment saying std::mutex must not trip the code rule.\n"
            "#include \"common/mutex.h\"\n"
            "Mutex g_mu;\n"
            "void F() { MutexLock lock(&g_mu); }\n",
        )
        self.assert_clean(self.repo.run("src"))

    # -- nolint-discipline --------------------------------------------------

    def test_bare_nolint_violating(self):
        self.repo.write(
            "src/a.cpp", "int x = getenv_thing();  // NOLINT\n"
        )
        self.assert_violation(
            self.repo.run("src"), "nolint-discipline", "src/a.cpp"
        )

    def test_nolint_without_reason_violating(self):
        self.repo.write(
            "src/a.cpp",
            "int x = f();  // NOLINT(some-check)\n",
        )
        self.assert_violation(
            self.repo.run("src"), "nolint-discipline", "src/a.cpp"
        )

    def test_nolint_with_reason_clean(self):
        self.repo.write(
            "src/a.cpp",
            "// Static-init is single-threaded, so getenv is safe here.\n"
            "int x = f();  // NOLINT(concurrency-mt-unsafe)\n"
            "int y = g();  // NOLINT(some-check) widening cast is intended\n",
        )
        self.assert_clean(self.repo.run("src"))

    # -- nn-alloc -----------------------------------------------------------

    def test_nn_alloc_violating(self):
        self.repo.write(
            "src/nn/layer.cpp",
            "float* Make(int n) { return new float[n]; }\n",
        )
        self.assert_violation(
            self.repo.run("src"), "nn-alloc", "src/nn/layer.cpp"
        )

    def test_nn_alloc_malloc_violating(self):
        self.repo.write(
            "src/nn/layer.cpp",
            "#include <cstdlib>\n"
            "void* Make(int n) { return malloc(n); }\n",
        )
        self.assert_violation(
            self.repo.run("src"), "nn-alloc", "src/nn/layer.cpp"
        )

    def test_nn_alloc_scoped_to_nn(self):
        # `new` outside src/nn is allowed (e.g. make_unique internals aside,
        # service setup code may allocate).
        self.repo.write(
            "src/serve/a.cpp", "int* Make() { return new int(3); }\n"
        )
        self.assert_clean(self.repo.run("src"))

    def test_nn_alloc_clean(self):
        self.repo.write(
            "src/nn/layer.cpp",
            "// Buffers come from the workspace arena; 'renewal' is a word\n"
            "// containing new and must not trip the token match.\n"
            "int renewal = 0;\n"
            "float* Get(Workspace* w) { return w->Get(16); }\n",
        )
        self.assert_clean(self.repo.run("src"))

    # -- raw-intrinsics -----------------------------------------------------

    def test_raw_intrinsics_call_violating(self):
        self.repo.write(
            "src/nn/fast.cpp",
            "#include <immintrin.h>\n"
            "__m256d Add(__m256d a, __m256d b) { return _mm256_add_pd(a, b); }\n",
        )
        result = self.repo.run("src")
        self.assert_violation(result, "raw-intrinsics", "src/nn/fast.cpp")
        # Call, vector type, and include each fire.
        self.assertIn("_mm* intrinsic call", result.stdout)
        self.assertIn("vector type", result.stdout)
        self.assertIn("intrinsics header include", result.stdout)

    def test_raw_intrinsics_builtin_violating(self):
        self.repo.write(
            "bench/b.cpp",
            "double F(double x) { return __builtin_ia32_sqrtsd(x); }\n",
        )
        self.assert_violation(
            self.repo.run("bench"), "raw-intrinsics", "bench/b.cpp"
        )

    def test_raw_intrinsics_wrapper_header_exempt(self):
        self.repo.write(
            "src/common/simd.h",
            "#include <immintrin.h>\n"
            "inline __m128d Load(const double* p) { return _mm_loadu_pd(p); }\n",
        )
        self.assert_clean(self.repo.run("src"))

    def test_raw_intrinsics_clean(self):
        self.repo.write(
            "src/nn/fast.cpp",
            "// Words like _mm_prefix in comments and commit_mm_log() calls\n"
            "// must not trip the token match.\n"
            '#include "common/simd.h"\n'
            "int commit_mm_log();\n"
            "namespace vec = dbaugur::simd::best;\n",
        )
        self.assert_clean(self.repo.run("src"))

    # -- raw-thread ---------------------------------------------------------

    def test_raw_thread_violating(self):
        self.repo.write(
            "src/serve/runner.cpp",
            "#include <thread>\n"
            "void Go() { std::thread t([] {}); t.join(); }\n",
        )
        result = self.repo.run("src")
        self.assert_violation(result, "raw-thread", "src/serve/runner.cpp")
        self.assertIn("bare std::thread", result.stdout)

    def test_raw_thread_member_violating(self):
        self.repo.write(
            "src/serve/loop.h",
            "#include <thread>\n"
            "class Loop { std::thread worker_; };\n",
        )
        self.assert_violation(
            self.repo.run("src"), "raw-thread", "src/serve/loop.h"
        )

    def test_raw_thread_owner_files_exempt(self):
        self.repo.write(
            "src/common/thread_pool.h",
            "#include <thread>\n"
            "class ThreadPool { std::thread workers_[4]; };\n",
        )
        self.repo.write(
            "src/serve/retrain_workers.cpp",
            "#include <thread>\n"
            "void Spawn() { std::thread t([] {}); t.detach(); }\n",
        )
        self.assert_clean(self.repo.run("src"))

    def test_raw_thread_clean(self):
        self.repo.write(
            "src/serve/timing.cpp",
            "#include <thread>\n"
            "unsigned Cores() { return std::thread::hardware_concurrency(); }\n"
            "void Nap() { std::this_thread::yield(); }\n",
        )
        self.assert_clean(self.repo.run("src"))

    def test_raw_thread_scoped_to_src(self):
        self.repo.write(
            "tests/t.cpp",
            "#include <thread>\n"
            "void Race() { std::thread t([] {}); t.join(); }\n",
        )
        self.repo.write(
            "bench/b.cpp",
            "#include <thread>\n"
            "void Drive() { std::thread t([] {}); t.join(); }\n",
        )
        self.assert_clean(self.repo.run("tests", "bench"))

    # -- allowlist ----------------------------------------------------------

    def test_allowlist_suppresses_named_rule_and_file(self):
        self.repo.write(
            "src/a.cpp", "void F(int x) { assert(x); }\n"
        )
        self.repo.write("allow.txt", "bare-assert src/a.cpp\n")
        self.assert_clean(self.repo.run("src", allowlist="allow.txt"))

    def test_allowlist_is_per_rule(self):
        self.repo.write(
            "src/a.cpp",
            "void F(int x) { assert(x); }\nint r = std::rand();\n",
        )
        self.repo.write("allow.txt", "bare-assert src/a.cpp\n")
        result = self.repo.run("src", allowlist="allow.txt")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[nondeterminism]", result.stdout)
        self.assertNotIn("[bare-assert]", result.stdout)

    def test_allowlist_comments_and_blanks_ok(self):
        self.repo.write("src/a.cpp", "int x = 0;\n")
        self.repo.write(
            "allow.txt", "# a comment\n\nbare-assert src/a.cpp  # trailing\n"
        )
        self.assert_clean(self.repo.run("src", allowlist="allow.txt"))

    def test_malformed_allowlist_is_usage_error(self):
        self.repo.write("src/a.cpp", "int x = 0;\n")
        self.repo.write("allow.txt", "just-one-token\n")
        result = self.repo.run("src", allowlist="allow.txt")
        self.assertEqual(result.returncode, 2)
        self.assertIn("malformed", result.stderr)

    # -- exit codes / CLI ---------------------------------------------------

    def test_missing_target_is_usage_error(self):
        result = self.repo.run("no_such_dir")
        self.assertEqual(result.returncode, 2)
        self.assertIn("no such file or directory", result.stderr)

    def test_static_analysis_fixtures_are_skipped(self):
        # Negative-compile samples intentionally violate invariants and must
        # not be linted.
        self.repo.write(
            "tests/static_analysis/race.cpp",
            "void F(int x) { assert(x); }\n",
        )
        self.repo.write("tests/ok_test.cpp", "int x = 0;\n")
        self.assert_clean(self.repo.run("tests"))


class StripperTest(unittest.TestCase):
    """Unit tests for the comment/string stripper (line numbers must hold)."""

    def test_preserves_line_count(self):
        src = "int a; // c\n/* b\nlock */ int d;\nconst char* s = \"x\ny\";\n"
        self.assertEqual(
            len(lint.strip_comments_and_strings(src).splitlines()),
            len(src.splitlines()),
        )

    def test_strips_block_comment_content(self):
        out = lint.strip_comments_and_strings("/* assert(x) */ int y;")
        self.assertNotIn("assert", out)
        self.assertIn("int y;", out)

    def test_strips_escaped_quote_in_string(self):
        out = lint.strip_comments_and_strings(
            'const char* s = "he said \\"assert(x)\\""; int z;'
        )
        self.assertNotIn("assert", out)
        self.assertIn("int z;", out)

    def test_raw_string_stripped(self):
        out = lint.strip_comments_and_strings(
            'auto s = R"(assert(x) // not a comment)"; int q;'
        )
        self.assertNotIn("assert", out)
        self.assertIn("int q;", out)

    def test_char_literal_stripped(self):
        out = lint.strip_comments_and_strings("char c = '\\''; int w;")
        self.assertIn("int w;", out)


if __name__ == "__main__":
    unittest.main()

// Tests for the region-migration load balancer and simulation harness.

#include <gtest/gtest.h>

#include <numeric>

#include "migrate/load_balancer.h"
#include "workloads/generators.h"

namespace dbaugur::migrate {
namespace {

TEST(BalanceDifferenceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BalanceDifference({10, 10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(BalanceDifference({0, 20}), 2.0);  // (20-0)/10
  EXPECT_DOUBLE_EQ(BalanceDifference({}), 0.0);
  EXPECT_DOUBLE_EQ(BalanceDifference({0, 0}), 0.0);
}

TEST(LoadBalancerTest, RoundRobinInitialAssignment) {
  LoadBalancer lb(3, 7);
  EXPECT_EQ(lb.server_of(0), 0u);
  EXPECT_EQ(lb.server_of(1), 1u);
  EXPECT_EQ(lb.server_of(3), 0u);
  EXPECT_EQ(lb.servers(), 3u);
  EXPECT_EQ(lb.regions(), 7u);
}

TEST(LoadBalancerTest, ServerLoadsAggregation) {
  LoadBalancer lb(2, 4);
  auto loads = lb.ServerLoads({1, 2, 3, 4});
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 4.0);  // regions 0, 2
  EXPECT_DOUBLE_EQ(loads[1], 6.0);  // regions 1, 3
}

TEST(LoadBalancerTest, PlanReducesImbalance) {
  LoadBalancer lb(2, 4);
  // Server 0 holds regions {0, 2} with loads {10, 10}; server 1 {1, 3} with
  // {1, 1}: imbalance (20-2)/11.
  std::vector<double> loads = {10, 1, 10, 1};
  double before = BalanceDifference(lb.ServerLoads(loads));
  auto moves = lb.Plan(loads, 2);
  EXPECT_FALSE(moves.empty());
  lb.Apply(moves);
  double after = BalanceDifference(lb.ServerLoads(loads));
  EXPECT_LT(after, before);
}

TEST(LoadBalancerTest, NoMovesWhenBalanced) {
  LoadBalancer lb(2, 4);
  auto moves = lb.Plan({5, 5, 5, 5}, 3);
  EXPECT_TRUE(moves.empty());
}

TEST(LoadBalancerTest, MaxMovesRespected) {
  LoadBalancer lb(2, 8);
  std::vector<double> loads = {9, 1, 9, 1, 9, 1, 9, 1};
  auto moves = lb.Plan(loads, 1);
  EXPECT_LE(moves.size(), 1u);
}

TEST(RotatingRegionLoadsTest, ConservesBaseMass) {
  workloads::PeriodicOptions popts;
  popts.periods = 4;
  auto base = workloads::GeneratePeriodic(popts);
  auto regions = MakeRotatingRegionLoads(base, 6, 0.3, 2.0);
  ASSERT_EQ(regions.size(), 6u);
  // Total across regions at each step stays within the hotspot gain factor
  // of the base (mass scaled by 1/R, amplified where the hotspot sits).
  for (size_t p = 0; p < base.size(); p += 17) {
    double total = 0;
    for (const auto& r : regions) total += r[p];
    EXPECT_GT(total, base[p] * 0.9);
    EXPECT_LT(total, base[p] * 3.1);
  }
}

TEST(RotatingRegionLoadsTest, HotspotMovesOverTime) {
  workloads::PeriodicOptions popts;
  popts.periods = 8;
  popts.noise_sd = 0.0;
  auto base = workloads::GeneratePeriodic(popts);
  // Constant base so only the hotspot drives differences.
  for (auto& v : base.mutable_values()) v = 100.0;
  auto regions = MakeRotatingRegionLoads(base, 8, 0.5, 3.0);
  auto hottest_at = [&](size_t p) {
    size_t best = 0;
    for (size_t r = 1; r < regions.size(); ++r) {
      if (regions[r][p] > regions[best][p]) best = r;
    }
    return best;
  };
  EXPECT_NE(hottest_at(0), hottest_at(8));
}

TEST(SimulateMigrationTest, OraclePredictorBeatsLaggingStatic) {
  workloads::PeriodicOptions popts;
  popts.periods = 3;
  popts.steps_per_period = 40;
  auto base = workloads::GeneratePeriodic(popts);
  auto regions = MakeRotatingRegionLoads(base, 8, 0.35, 3.0);
  size_t eval_start = 20;
  // Static: expected load = last observed period.
  auto static_pred = [&](size_t r, size_t p) -> StatusOr<double> {
    return regions[r][p - 1];
  };
  // Oracle: perfect forecast.
  auto oracle_pred = [&](size_t r, size_t p) -> StatusOr<double> {
    return regions[r][p];
  };
  auto static_bal = SimulateMigration(regions, 4, eval_start, static_pred, 2);
  auto oracle_bal = SimulateMigration(regions, 4, eval_start, oracle_pred, 2);
  ASSERT_TRUE(static_bal.ok());
  ASSERT_TRUE(oracle_bal.ok());
  double static_avg =
      std::accumulate(static_bal->begin(), static_bal->end(), 0.0) /
      static_cast<double>(static_bal->size());
  double oracle_avg =
      std::accumulate(oracle_bal->begin(), oracle_bal->end(), 0.0) /
      static_cast<double>(oracle_bal->size());
  EXPECT_LT(oracle_avg, static_avg);
}

TEST(SimulateMigrationTest, Validation) {
  auto pred = [](size_t, size_t) -> StatusOr<double> { return 1.0; };
  EXPECT_FALSE(SimulateMigration({}, 2, 0, pred, 1).ok());
  std::vector<ts::Series> regions = {ts::Series(0, 60, {1, 2}),
                                     ts::Series(0, 60, {1})};
  EXPECT_FALSE(SimulateMigration(regions, 2, 0, pred, 1).ok());
  std::vector<ts::Series> ok_regions = {ts::Series(0, 60, {1, 2})};
  EXPECT_FALSE(SimulateMigration(ok_regions, 2, 5, pred, 1).ok());
}

TEST(SimulateMigrationTest, PredictorErrorsPropagate) {
  std::vector<ts::Series> regions = {ts::Series(0, 60, {1, 2, 3})};
  auto bad = [](size_t, size_t) -> StatusOr<double> {
    return Status::Internal("model exploded");
  };
  auto res = SimulateMigration(regions, 2, 1, bad, 1);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dbaugur::migrate

// Tests for the classical forecasters: LR, ARIMA, KR, and the shared
// evaluation harness.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "models/arima.h"
#include "models/factory.h"
#include "models/kernel_regression.h"
#include "models/linear_regression.h"
#include "ts/metrics.h"

namespace dbaugur::models {
namespace {

std::vector<double> SineSeries(size_t n, double period, double noise_sd,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
           rng.Gaussian(0.0, noise_sd);
  }
  return v;
}

std::vector<double> LinearSeries(size_t n, double slope) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 2.0 + slope * static_cast<double>(i);
  return v;
}

ForecasterOptions Opts(size_t window = 16, size_t horizon = 1) {
  ForecasterOptions o;
  o.window = window;
  o.horizon = horizon;
  return o;
}

TEST(LinearRegressionTest, FitsLinearTrendExactly) {
  auto series = LinearSeries(200, 0.5);
  LinearRegressionForecaster lr(Opts());
  ASSERT_TRUE(lr.Fit(series).ok());
  std::vector<double> window(series.end() - 16, series.end());
  auto pred = lr.Predict(window);
  ASSERT_TRUE(pred.ok());
  double expected = 2.0 + 0.5 * 200.0;
  EXPECT_NEAR(*pred, expected, 1e-3);
}

TEST(LinearRegressionTest, MultiHorizonExtrapolates) {
  auto series = LinearSeries(200, -0.25);
  LinearRegressionForecaster lr(Opts(16, 5));
  ASSERT_TRUE(lr.Fit(series).ok());
  std::vector<double> window(series.end() - 16, series.end());
  auto pred = lr.Predict(window);
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(*pred, 2.0 - 0.25 * 204.0, 1e-3);
}

TEST(LinearRegressionTest, PredictBeforeFitFails) {
  LinearRegressionForecaster lr(Opts());
  EXPECT_EQ(lr.Predict(std::vector<double>(16, 1.0)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinearRegressionTest, WrongWindowSizeFails) {
  auto series = LinearSeries(100, 1.0);
  LinearRegressionForecaster lr(Opts());
  ASSERT_TRUE(lr.Fit(series).ok());
  EXPECT_EQ(lr.Predict(std::vector<double>(5, 1.0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LinearRegressionTest, TooShortSeriesFails) {
  LinearRegressionForecaster lr(Opts(32, 4));
  EXPECT_FALSE(lr.Fit(std::vector<double>(10, 1.0)).ok());
}

TEST(ArimaTest, CapturesAr1Process) {
  // x_t = 0.8 x_{t-1} + eps: ARIMA(1,0,1) should recover phi ~ 0.8.
  Rng rng(3);
  std::vector<double> v(3000, 0.0);
  for (size_t i = 1; i < v.size(); ++i) {
    v[i] = 0.8 * v[i - 1] + rng.Gaussian(0.0, 1.0);
  }
  ForecasterOptions opts = Opts(30, 1);
  ArimaForecaster arima(opts, ArimaOptions{1, 0, 1});
  ASSERT_TRUE(arima.Fit(v).ok());
  ASSERT_EQ(arima.ar_coefficients().size(), 1u);
  EXPECT_NEAR(arima.ar_coefficients()[0], 0.8, 0.1);
}

TEST(ArimaTest, DifferencingHandlesTrend) {
  // Random walk with drift: first differences are stationary.
  Rng rng(5);
  std::vector<double> v(2000, 0.0);
  for (size_t i = 1; i < v.size(); ++i) {
    v[i] = v[i - 1] + 0.5 + rng.Gaussian(0.0, 0.2);
  }
  ArimaForecaster arima(Opts(30, 1), ArimaOptions{2, 1, 2});
  ASSERT_TRUE(arima.Fit(v).ok());
  std::vector<double> window(v.end() - 30, v.end());
  auto pred = arima.Predict(window);
  ASSERT_TRUE(pred.ok());
  // One step ahead should continue the drift.
  EXPECT_NEAR(*pred, v.back() + 0.5, 0.5);
}

TEST(ArimaTest, SecondOrderDifferencing) {
  // Quadratic series: d=2 makes it constant.
  std::vector<double> v(500);
  for (size_t i = 0; i < v.size(); ++i) {
    double x = static_cast<double>(i);
    v[i] = 0.01 * x * x;
  }
  ArimaForecaster arima(Opts(30, 2), ArimaOptions{1, 2, 1});
  ASSERT_TRUE(arima.Fit(v).ok());
  std::vector<double> window(v.end() - 30, v.end());
  auto pred = arima.Predict(window);
  ASSERT_TRUE(pred.ok());
  double x = 501.0;
  EXPECT_NEAR(*pred, 0.01 * x * x, 2.0);
}

TEST(ArimaTest, InvalidOrdersRejected) {
  ArimaForecaster bad_d(Opts(), ArimaOptions{1, 3, 1});
  EXPECT_FALSE(bad_d.Fit(LinearSeries(300, 1.0)).ok());
  ArimaForecaster no_terms(Opts(), ArimaOptions{0, 1, 0});
  EXPECT_FALSE(no_terms.Fit(LinearSeries(300, 1.0)).ok());
}

TEST(ArimaTest, SeriesTooShortRejected) {
  ArimaForecaster arima(Opts(), ArimaOptions{2, 1, 2});
  EXPECT_FALSE(arima.Fit(std::vector<double>(20, 1.0)).ok());
}

TEST(KernelRegressionTest, InterpolatesSine) {
  auto series = SineSeries(1200, 48.0, 0.05, 7);
  KernelRegressionForecaster kr(Opts(24, 1));
  ASSERT_TRUE(kr.Fit(series).ok());
  auto eval = EvaluateForecaster(kr, series, 840, 24, 1);
  ASSERT_TRUE(eval.ok());
  auto mse = ts::MSE(eval->predicted, eval->actual);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 0.5);  // signal variance is 12.5, so this is a real fit
}

TEST(KernelRegressionTest, SubsamplingCapsStorage) {
  auto series = SineSeries(4000, 48.0, 0.05, 9);
  KernelRegressionOptions kopts;
  kopts.max_samples = 300;
  KernelRegressionForecaster kr(Opts(24, 1), kopts);
  ASSERT_TRUE(kr.Fit(series).ok());
  EXPECT_EQ(kr.stored_samples(), 300u);
}

TEST(KernelRegressionTest, ExplicitBandwidthUsed) {
  KernelRegressionOptions kopts;
  kopts.bandwidth = 2.5;
  KernelRegressionForecaster kr(Opts(8, 1), kopts);
  ASSERT_TRUE(kr.Fit(SineSeries(300, 24.0, 0.1, 11)).ok());
  EXPECT_DOUBLE_EQ(kr.bandwidth(), 2.5);
}

TEST(KernelRegressionTest, FarQueryFallsBackToMean) {
  auto series = SineSeries(300, 24.0, 0.1, 13);
  KernelRegressionOptions kopts;
  kopts.bandwidth = 1e-6;  // kernels vanish for any non-identical window
  KernelRegressionForecaster kr(Opts(8, 1), kopts);
  ASSERT_TRUE(kr.Fit(series).ok());
  std::vector<double> far(8, 1e6);
  auto pred = kr.Predict(far);
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(*pred, 10.0, 2.0);  // mean of the sine series
}

TEST(EvaluateForecasterTest, AlignmentAndErrors) {
  auto series = LinearSeries(100, 1.0);
  LinearRegressionForecaster lr(Opts(10, 3));
  ASSERT_TRUE(lr.Fit(series).ok());
  auto eval = EvaluateForecaster(lr, series, 70, 10, 3);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->predicted.size(), 30u);
  EXPECT_EQ(eval->target_index.front(), 70u);
  EXPECT_EQ(eval->target_index.back(), 99u);
  auto mse = ts::MSE(eval->predicted, eval->actual);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 1e-6);
}

TEST(EvaluateForecasterTest, RejectsDegenerateSetups) {
  auto series = LinearSeries(50, 1.0);
  LinearRegressionForecaster lr(Opts(10, 1));
  ASSERT_TRUE(lr.Fit(series).ok());
  EXPECT_FALSE(EvaluateForecaster(lr, series, 50, 10, 1).ok());
  EXPECT_FALSE(EvaluateForecaster(lr, series, 5, 10, 1).ok());
  EXPECT_FALSE(EvaluateForecaster(lr, series, 20, 0, 1).ok());
}

TEST(FactoryTest, BuildsEveryKnownModel) {
  for (const auto& name : KnownModelNames()) {
    auto m = MakeForecaster(name, Opts());
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_EQ((*m)->name(), name);
  }
}

TEST(FactoryTest, UnknownNameFails) {
  auto m = MakeForecaster("Prophet", Opts());
  EXPECT_EQ(m.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dbaugur::models

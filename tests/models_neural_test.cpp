// Tests for the neural forecasters (MLP, LSTM, TCN, WFGAN, multi-task WFGAN):
// each must actually learn a predictable synthetic signal, beating the naive
// persistence ("repeat last value") baseline by a wide margin.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "models/lstm_forecaster.h"
#include "models/mlp.h"
#include "models/tcn.h"
#include "models/wfgan.h"
#include "models/wfgan_multitask.h"
#include "ts/metrics.h"

namespace dbaugur::models {
namespace {

std::vector<double> SineSeries(size_t n, double period, double noise_sd,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
           rng.Gaussian(0.0, noise_sd);
  }
  return v;
}

// MSE of predicting x_{t+h} = x_t on the evaluation region.
double PersistenceMse(const std::vector<double>& series, size_t train_size,
                      size_t horizon) {
  std::vector<double> pred, actual;
  for (size_t t = train_size; t < series.size(); ++t) {
    if (t < horizon) continue;
    pred.push_back(series[t - horizon]);
    actual.push_back(series[t]);
  }
  return *ts::MSE(pred, actual);
}

ForecasterOptions FastOpts(size_t horizon = 3) {
  ForecasterOptions o;
  o.window = 24;
  o.horizon = horizon;
  o.epochs = 25;
  o.batch_size = 32;
  return o;
}

template <typename Model>
double TrainedMse(Model& model, const std::vector<double>& series,
                  size_t train_size, const ForecasterOptions& opts) {
  std::vector<double> train(series.begin(),
                            series.begin() + static_cast<ptrdiff_t>(train_size));
  EXPECT_TRUE(model.Fit(train).ok());
  auto eval =
      EvaluateForecaster(model, series, train_size, opts.window, opts.horizon);
  EXPECT_TRUE(eval.ok());
  return *ts::MSE(eval->predicted, eval->actual);
}

TEST(MlpForecasterTest, LearnsSineBeatsPersistence) {
  auto series = SineSeries(1000, 48.0, 0.1, 21);
  ForecasterOptions opts = FastOpts();
  MlpForecaster mlp(opts);
  double mse = TrainedMse(mlp, series, 700, opts);
  double naive = PersistenceMse(series, 700, opts.horizon);
  EXPECT_LT(mse, naive * 0.3) << "mse=" << mse << " naive=" << naive;
}

TEST(MlpForecasterTest, ParameterCountMatchesArchitecture) {
  ForecasterOptions opts = FastOpts();
  MlpForecaster mlp(opts);  // 24->32->16->1
  EXPECT_EQ(mlp.ParameterCount(), 24 * 32 + 32 + 32 * 16 + 16 + 16 + 1);
  EXPECT_GT(mlp.StorageBytes(), 4 * mlp.ParameterCount());
}

TEST(MlpForecasterTest, PredictGuards) {
  ForecasterOptions opts = FastOpts();
  MlpForecaster mlp(opts);
  EXPECT_EQ(mlp.Predict(std::vector<double>(24, 0.0)).status().code(),
            StatusCode::kFailedPrecondition);
  auto series = SineSeries(400, 48.0, 0.1, 22);
  ASSERT_TRUE(mlp.Fit(series).ok());
  EXPECT_EQ(mlp.Predict(std::vector<double>(3, 0.0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LstmForecasterTest, LearnsSineBeatsPersistence) {
  auto series = SineSeries(1000, 48.0, 0.1, 23);
  ForecasterOptions opts = FastOpts();
  LstmForecaster lstm(opts);
  double mse = TrainedMse(lstm, series, 700, opts);
  double naive = PersistenceMse(series, 700, opts.horizon);
  EXPECT_LT(mse, naive * 0.5) << "mse=" << mse << " naive=" << naive;
}

// The f32 training path (ForecasterOptions::precision) must learn the same
// signal to comparable quality, round-trip its state exactly, and report the
// same architecture as the f64 twin.
TEST(LstmForecasterTest, F32PathLearnsAndBeatsPersistence) {
  auto series = SineSeries(1000, 48.0, 0.1, 23);
  ForecasterOptions opts = FastOpts();
  opts.precision = Precision::kF32;
  LstmForecaster lstm(opts);
  double mse = TrainedMse(lstm, series, 700, opts);
  double naive = PersistenceMse(series, 700, opts.horizon);
  EXPECT_LT(mse, naive * 0.5) << "mse=" << mse << " naive=" << naive;
}

TEST(LstmForecasterTest, F32MatchesF64ArchitectureAndRoundTripsState) {
  auto series = SineSeries(500, 48.0, 0.1, 29);
  ForecasterOptions opts = FastOpts();
  opts.epochs = 3;
  LstmForecaster f64(opts);
  opts.precision = Precision::kF32;
  LstmForecaster f32(opts);
  EXPECT_EQ(f32.ParameterCount(), f64.ParameterCount());
  ASSERT_TRUE(f32.Fit(series).ok());
  ASSERT_TRUE(f64.Fit(series).ok());
  std::vector<double> window(series.end() - 24, series.end());
  // Same RNG stream at both widths: the models start from the same (rounded)
  // weights and should end close on an easy signal.
  EXPECT_NEAR(*f32.Predict(window), *f64.Predict(window), 0.5);
  // State round trip through the lossless f64 wire form is bit-exact.
  auto blob = f32.SaveState();
  ASSERT_TRUE(blob.ok());
  LstmForecaster restored(opts);
  ASSERT_TRUE(restored.LoadState(*blob).ok());
  EXPECT_DOUBLE_EQ(*restored.Predict(window), *f32.Predict(window));
}

TEST(MlpForecasterTest, F32PathLearnsAndRoundTripsState) {
  auto series = SineSeries(1000, 48.0, 0.1, 21);
  ForecasterOptions opts = FastOpts();
  opts.precision = Precision::kF32;
  MlpForecaster mlp(opts);
  double mse = TrainedMse(mlp, series, 700, opts);
  double naive = PersistenceMse(series, 700, opts.horizon);
  EXPECT_LT(mse, naive * 0.3) << "mse=" << mse << " naive=" << naive;
  std::vector<double> window(series.begin() + 700 - 24,
                             series.begin() + 700);
  auto blob = mlp.SaveState();
  ASSERT_TRUE(blob.ok());
  MlpForecaster restored(opts);
  ASSERT_TRUE(restored.LoadState(*blob).ok());
  EXPECT_DOUBLE_EQ(*restored.Predict(window), *mlp.Predict(window));
}

TEST(LstmForecasterTest, DeterministicAcrossRuns) {
  auto series = SineSeries(500, 48.0, 0.1, 25);
  ForecasterOptions opts = FastOpts();
  opts.epochs = 3;
  LstmForecaster a(opts), b(opts);
  ASSERT_TRUE(a.Fit(series).ok());
  ASSERT_TRUE(b.Fit(series).ok());
  std::vector<double> window(series.end() - 24, series.end());
  EXPECT_DOUBLE_EQ(*a.Predict(window), *b.Predict(window));
}

TEST(TcnForecasterTest, LearnsSineBeatsPersistence) {
  auto series = SineSeries(1000, 48.0, 0.1, 27);
  ForecasterOptions opts = FastOpts();
  TcnForecaster tcn(opts);
  double mse = TrainedMse(tcn, series, 700, opts);
  double naive = PersistenceMse(series, 700, opts.horizon);
  EXPECT_LT(mse, naive * 0.5) << "mse=" << mse << " naive=" << naive;
}

TEST(TcnForecasterTest, ReceptiveFieldCoversPaperWindow) {
  ForecasterOptions opts = FastOpts();
  TcnForecaster tcn(opts);  // dilations 1..16, kernel 2
  EXPECT_EQ(tcn.ReceptiveField(), 1 + 2 * (1 + 2 + 4 + 8 + 16));  // 63 >= 30
  EXPECT_GE(tcn.ReceptiveField(), 30u);
}

TEST(TcnForecasterTest, CustomDilations) {
  ForecasterOptions opts = FastOpts();
  TcnOptions topts;
  topts.dilations = {1, 2};
  topts.channels = 4;
  TcnForecaster tcn(opts, topts);
  EXPECT_EQ(tcn.ReceptiveField(), 1 + 2 * 3);
  auto series = SineSeries(400, 24.0, 0.1, 29);
  EXPECT_TRUE(tcn.Fit(series).ok());
}

TEST(WfganTest, LearnsSineBeatsPersistence) {
  auto series = SineSeries(1000, 48.0, 0.1, 31);
  ForecasterOptions opts = FastOpts();
  WfganForecaster gan(opts);
  double mse = TrainedMse(gan, series, 700, opts);
  double naive = PersistenceMse(series, 700, opts.horizon);
  EXPECT_LT(mse, naive * 0.5) << "mse=" << mse << " naive=" << naive;
}

TEST(WfganTest, DiscriminatorSeparatesRealFromGeneratorEarly) {
  // D's real-vs-fake margin is only guaranteed while G is still inaccurate
  // (at the min-max equilibrium both distributions coincide and D -> 1/2), so
  // train briefly with a pure adversarial objective and compare the MEAN
  // scores of true continuations vs generator continuations over many
  // windows.
  auto series = SineSeries(800, 48.0, 0.1, 33);
  ForecasterOptions opts = FastOpts(1);
  opts.epochs = 5;
  WfganOptions gopts;
  gopts.supervised_weight = 0.0;  // keep G inaccurate
  gopts.adversarial_weight = 1.0;
  WfganForecaster gan(opts, gopts);
  std::vector<double> train(series.begin(), series.begin() + 600);
  ASSERT_TRUE(gan.Fit(train).ok());
  double real_sum = 0.0, fake_sum = 0.0;
  int count = 0;
  for (size_t t = 624; t < series.size(); t += 4) {
    std::vector<double> window(series.begin() + static_cast<ptrdiff_t>(t - 24),
                               series.begin() + static_cast<ptrdiff_t>(t));
    auto gen = gan.Predict(window);
    ASSERT_TRUE(gen.ok());
    auto real_score = gan.DiscriminatorScore(window, series[t]);
    auto fake_score = gan.DiscriminatorScore(window, *gen);
    ASSERT_TRUE(real_score.ok());
    ASSERT_TRUE(fake_score.ok());
    real_sum += *real_score;
    fake_sum += *fake_score;
    ++count;
  }
  EXPECT_GT(real_sum / count, fake_sum / count);
}

TEST(WfganTest, EpochStatsAreFinite) {
  auto series = SineSeries(400, 24.0, 0.1, 35);
  ForecasterOptions opts = FastOpts(1);
  opts.epochs = 2;
  WfganForecaster gan(opts);
  ASSERT_TRUE(gan.PrepareTraining(series).ok());
  auto stats = gan.TrainEpoch();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(std::isfinite(stats->d_loss));
  EXPECT_TRUE(std::isfinite(stats->g_adv));
  EXPECT_TRUE(std::isfinite(stats->g_mse));
  EXPECT_GT(stats->d_loss, 0.0);
}

TEST(WfganTest, NonAdversarialAblationStillLearns) {
  auto series = SineSeries(800, 48.0, 0.1, 37);
  ForecasterOptions opts = FastOpts();
  WfganOptions gopts;
  gopts.adversarial = false;
  WfganForecaster gan(opts, gopts);
  double mse = TrainedMse(gan, series, 600, opts);
  double naive = PersistenceMse(series, 600, opts.horizon);
  EXPECT_LT(mse, naive);
}

TEST(WfganTest, NoAttentionAblationStillLearns) {
  auto series = SineSeries(800, 48.0, 0.1, 39);
  ForecasterOptions opts = FastOpts();
  WfganOptions gopts;
  gopts.use_attention = false;
  WfganForecaster gan(opts, gopts);
  double mse = TrainedMse(gan, series, 600, opts);
  double naive = PersistenceMse(series, 600, opts.horizon);
  EXPECT_LT(mse, naive);
}

TEST(MultiTaskWfganTest, JointTrainingLearnsBothTasks) {
  auto query = SineSeries(700, 48.0, 0.1, 41);
  // Resource trace correlated with the query trace (shifted/scaled).
  std::vector<double> resource(query.size());
  Rng rng(43);
  for (size_t i = 0; i < query.size(); ++i) {
    resource[i] = 0.3 + 0.04 * query[i] + rng.Gaussian(0.0, 0.01);
  }
  ForecasterOptions opts = FastOpts(1);
  opts.epochs = 20;
  MultiTaskWfgan mtl(opts, WfganOptions{});
  std::vector<double> qtrain(query.begin(), query.begin() + 500);
  std::vector<double> rtrain(resource.begin(), resource.begin() + 500);
  ASSERT_TRUE(mtl.Fit(qtrain, rtrain).ok());

  // Evaluate both tasks on the held-out tail.
  std::vector<double> qpred, qact, rpred, ract;
  for (size_t t = 500; t < query.size(); ++t) {
    std::vector<double> qw(query.begin() + static_cast<ptrdiff_t>(t - 24),
                           query.begin() + static_cast<ptrdiff_t>(t));
    std::vector<double> rw(resource.begin() + static_cast<ptrdiff_t>(t - 24),
                           resource.begin() + static_cast<ptrdiff_t>(t));
    auto qp = mtl.Predict(WorkloadTask::kQuery, qw);
    auto rp = mtl.Predict(WorkloadTask::kResource, rw);
    ASSERT_TRUE(qp.ok());
    ASSERT_TRUE(rp.ok());
    qpred.push_back(*qp);
    qact.push_back(query[t]);
    rpred.push_back(*rp);
    ract.push_back(resource[t]);
  }
  double qmse = *ts::MSE(qpred, qact);
  double rmse = *ts::MSE(rpred, ract);
  double qnaive = PersistenceMse(query, 500, 1);
  double rnaive = PersistenceMse(resource, 500, 1);
  EXPECT_LT(qmse, qnaive) << qmse << " vs " << qnaive;
  EXPECT_LT(rmse, rnaive) << rmse << " vs " << rnaive;
}

TEST(MultiTaskWfganTest, SharedTrunkIsCounted) {
  ForecasterOptions opts = FastOpts(1);
  MultiTaskWfgan mtl(opts, WfganOptions{});
  // Shared LSTM: 4*h*(in+h+1) with in=1, h=30.
  EXPECT_EQ(mtl.SharedParameterCount(), 4 * 30 * (1 + 30) + 4 * 30);
  EXPECT_GT(mtl.ParameterCount(), 2 * mtl.SharedParameterCount());
}

TEST(MultiTaskWfganTest, StateRoundTripRestoresBothTasksExactly) {
  auto query = SineSeries(200, 48.0, 0.1, 47);
  std::vector<double> resource(query.size());
  for (size_t i = 0; i < query.size(); ++i) resource[i] = 0.3 + 0.04 * query[i];
  ForecasterOptions opts = FastOpts(1);
  opts.epochs = 2;
  MultiTaskWfgan mtl(opts, WfganOptions{});
  ASSERT_TRUE(mtl.Fit(query, resource).ok());
  auto blob = mtl.SaveState();
  ASSERT_TRUE(blob.ok());

  MultiTaskWfgan restored(opts, WfganOptions{});
  ASSERT_TRUE(restored.LoadState(*blob).ok());
  std::vector<double> qw(query.end() - 24, query.end());
  std::vector<double> rw(resource.end() - 24, resource.end());
  auto qa = mtl.Predict(WorkloadTask::kQuery, qw);
  auto qb = restored.Predict(WorkloadTask::kQuery, qw);
  auto ra = mtl.Predict(WorkloadTask::kResource, rw);
  auto rb = restored.Predict(WorkloadTask::kResource, rw);
  ASSERT_TRUE(qa.ok() && qb.ok() && ra.ok() && rb.ok());
  EXPECT_EQ(*qa, *qb);  // float64 state: bit-identical, not merely close
  EXPECT_EQ(*ra, *rb);

  // Corrupt blobs leave the target usable and un-fitted.
  MultiTaskWfgan fresh(opts, WfganOptions{});
  std::vector<uint8_t> cut(blob->begin(), blob->begin() + 16);
  EXPECT_FALSE(fresh.LoadState(cut).ok());
  EXPECT_EQ(fresh.Predict(WorkloadTask::kQuery, qw).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MultiTaskWfganTest, PredictBeforeFitFails) {
  ForecasterOptions opts = FastOpts(1);
  MultiTaskWfgan mtl(opts, WfganOptions{});
  EXPECT_EQ(mtl.Predict(WorkloadTask::kQuery, std::vector<double>(24, 0.0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbaugur::models

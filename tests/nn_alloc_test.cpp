// Verifies the zero-allocation contract of the layer workspaces: after a
// warm-up pass, steady-state Forward/Backward on every layer type performs no
// heap allocation.
//
// A global operator new/delete override counts allocations. This is safe to
// do in exactly one test binary (the override is process-wide); gtest's own
// bookkeeping allocates, so counting is explicitly scoped between
// ResetAllocCount/AllocCount pairs with no gtest assertions in between.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/matrix.h"

namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dbaugur::nn {
namespace {

void ResetAllocCount() { g_alloc_count.store(0, std::memory_order_relaxed); }
long AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform(-1.0, 1.0);
  }
  return m;
}

TEST(AllocTest, DenseSteadyStateIsAllocationFree) {
  Rng rng(1);
  Dense layer(13, 7, Activation::kTanh, &rng);
  Matrix x = RandomMatrix(8, 13, &rng);
  Matrix g = RandomMatrix(8, 7, &rng);
  // Warm-up builds the workspaces.
  layer.Forward(x);
  layer.Backward(g);
  ResetAllocCount();
  for (int i = 0; i < 3; ++i) {
    layer.Forward(x);
    layer.Backward(g);
  }
  long n = AllocCount();
  EXPECT_EQ(n, 0) << "Dense fwd/bwd allocated " << n << " times";
}

TEST(AllocTest, LstmSteadyStateIsAllocationFree) {
  Rng rng(2);
  LSTM lstm(3, 11, &rng);
  std::vector<Matrix> xs;
  std::vector<Matrix> grads;
  for (int t = 0; t < 5; ++t) {
    xs.push_back(RandomMatrix(4, 3, &rng));
    grads.push_back(RandomMatrix(4, 11, &rng));
  }
  lstm.ForwardSequence(xs);
  lstm.BackwardSequence(grads);
  ResetAllocCount();
  for (int i = 0; i < 3; ++i) {
    lstm.ForwardSequence(xs);
    lstm.BackwardSequence(grads);
  }
  long n = AllocCount();
  EXPECT_EQ(n, 0) << "LSTM fwd/bwd allocated " << n << " times";
}

TEST(AllocTest, AttentionSteadyStateIsAllocationFree) {
  Rng rng(3);
  TemporalAttention attn(11, 5, &rng);
  std::vector<Matrix> hs;
  for (int t = 0; t < 5; ++t) hs.push_back(RandomMatrix(4, 11, &rng));
  Matrix dc = RandomMatrix(4, 11, &rng);
  attn.Forward(hs);
  attn.Backward(dc);
  ResetAllocCount();
  for (int i = 0; i < 3; ++i) {
    attn.Forward(hs);
    attn.Backward(dc);
  }
  long n = AllocCount();
  EXPECT_EQ(n, 0) << "attention fwd/bwd allocated " << n << " times";
}

TEST(AllocTest, ConvAndTcnBlockSteadyStateIsAllocationFree) {
  Rng rng(4);
  CausalConv1D conv(2, 3, 2, 2, &rng);
  Tensor3 x(4, 2, 16);
  for (size_t b = 0; b < 4; ++b) {
    for (size_t c = 0; c < 2; ++c) {
      double* lane = x.lane(b, c);
      for (size_t t = 0; t < 16; ++t) lane[t] = rng.Uniform(-1.0, 1.0);
    }
  }
  Tensor3 g(4, 3, 16, 0.5);
  conv.Forward(x);
  conv.Backward(g);
  ResetAllocCount();
  for (int i = 0; i < 3; ++i) {
    conv.Forward(x);
    conv.Backward(g);
  }
  long n = AllocCount();
  EXPECT_EQ(n, 0) << "conv fwd/bwd allocated " << n << " times";

  TCNBlock block(2, 3, 2, 1, &rng);
  Tensor3 gb(4, 3, 16, 0.25);
  block.Forward(x);
  block.Backward(gb);
  ResetAllocCount();
  for (int i = 0; i < 3; ++i) {
    block.Forward(x);
    block.Backward(gb);
  }
  n = AllocCount();
  EXPECT_EQ(n, 0) << "TCN block fwd/bwd allocated " << n << " times";
}

TEST(AllocTest, LossGradReuseIsAllocationFree) {
  Rng rng(5);
  Matrix pred = RandomMatrix(8, 1, &rng);
  Matrix target = RandomMatrix(8, 1, &rng);
  Matrix grad;
  MSELoss(pred, target, &grad);  // warm-up sizes the grad buffer
  BCEWithLogitsLoss(pred, target, &grad);
  ResetAllocCount();
  for (int i = 0; i < 3; ++i) {
    MSELoss(pred, target, &grad);
    BCEWithLogitsLoss(pred, target, &grad);
    GeneratorGanLoss(pred, &grad);
  }
  long n = AllocCount();
  EXPECT_EQ(n, 0) << "loss grads allocated " << n << " times";
}

}  // namespace
}  // namespace dbaugur::nn

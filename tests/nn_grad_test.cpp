// Numerical gradient checks for every layer in the NN substrate. Each check
// defines the scalar loss L = sum(probe ⊙ output) for a fixed random probe,
// so dL/dOutput = probe, and compares analytic parameter/input gradients
// against central finite differences.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/layer.h"
#include "nn/lstm.h"
#include "nn/matrix.h"

namespace dbaugur::nn {
namespace {

constexpr double kEps = 1e-5;
constexpr double kTol = 1e-6;

Matrix RandomMatrix(size_t r, size_t c, Rng* rng) {
  Matrix m(r, c);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian(0.0, 0.5);
  return m;
}

double Dot(const Matrix& a, const Matrix& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a.data()[i] * b.data()[i];
  return s;
}

// Checks each parameter gradient of `params` against finite differences of
// `loss_fn` (which must recompute the forward pass from scratch).
void CheckParamGrads(std::vector<Param> params,
                     const std::function<double()>& loss_fn) {
  for (Param& p : params) {
    for (size_t i = 0; i < p.value->size(); ++i) {
      double orig = p.value->data()[i];
      p.value->data()[i] = orig + kEps;
      double lp = loss_fn();
      p.value->data()[i] = orig - kEps;
      double lm = loss_fn();
      p.value->data()[i] = orig;
      double numeric = (lp - lm) / (2 * kEps);
      EXPECT_NEAR(p.grad->data()[i], numeric, kTol)
          << "param " << p.name << " index " << i;
    }
  }
}

TEST(DenseGradTest, ParamAndInputGrads) {
  Rng rng(11);
  for (Activation act : {Activation::kIdentity, Activation::kRelu,
                         Activation::kTanh, Activation::kSigmoid}) {
    Dense layer(4, 3, act, &rng);
    Matrix x = RandomMatrix(5, 4, &rng);
    Matrix probe = RandomMatrix(5, 3, &rng);
    auto loss_fn = [&]() { return Dot(layer.Forward(x), probe); };
    loss_fn();
    layer.ZeroGrad();
    Matrix dx = layer.Backward(probe);
    CheckParamGrads(layer.Params(), loss_fn);
    // Input gradient check.
    for (size_t i = 0; i < x.size(); ++i) {
      double orig = x.data()[i];
      x.data()[i] = orig + kEps;
      double lp = loss_fn();
      x.data()[i] = orig - kEps;
      double lm = loss_fn();
      x.data()[i] = orig;
      EXPECT_NEAR(dx.data()[i], (lp - lm) / (2 * kEps), kTol) << "input " << i;
    }
  }
}

TEST(LstmGradTest, ParamAndInputGradsThroughTime) {
  Rng rng(13);
  const size_t kSteps = 5, kBatch = 3, kIn = 2, kHidden = 4;
  LSTM lstm(kIn, kHidden, &rng);
  std::vector<Matrix> xs;
  std::vector<Matrix> probes;
  for (size_t t = 0; t < kSteps; ++t) {
    xs.push_back(RandomMatrix(kBatch, kIn, &rng));
    probes.push_back(RandomMatrix(kBatch, kHidden, &rng));
  }
  auto loss_fn = [&]() {
    auto hs = lstm.ForwardSequence(xs);
    double s = 0.0;
    for (size_t t = 0; t < kSteps; ++t) s += Dot(hs[t], probes[t]);
    return s;
  };
  loss_fn();
  lstm.ZeroGrad();
  std::vector<Matrix> dxs = lstm.BackwardSequence(probes);
  CheckParamGrads(lstm.Params(), loss_fn);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < xs[t].size(); ++i) {
      double orig = xs[t].data()[i];
      xs[t].data()[i] = orig + kEps;
      double lp = loss_fn();
      xs[t].data()[i] = orig - kEps;
      double lm = loss_fn();
      xs[t].data()[i] = orig;
      EXPECT_NEAR(dxs[t].data()[i], (lp - lm) / (2 * kEps), kTol)
          << "step " << t << " input " << i;
    }
  }
}

TEST(AttentionGradTest, ParamAndInputGrads) {
  Rng rng(17);
  const size_t kSteps = 4, kBatch = 3, kHidden = 5, kAttn = 3;
  TemporalAttention attn(kHidden, kAttn, &rng);
  std::vector<Matrix> hs;
  for (size_t t = 0; t < kSteps; ++t) {
    hs.push_back(RandomMatrix(kBatch, kHidden, &rng));
  }
  Matrix probe = RandomMatrix(kBatch, kHidden, &rng);
  auto loss_fn = [&]() { return Dot(attn.Forward(hs), probe); };
  loss_fn();
  attn.ZeroGrad();
  std::vector<Matrix> dhs = attn.Backward(probe);
  CheckParamGrads(attn.Params(), loss_fn);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < hs[t].size(); ++i) {
      double orig = hs[t].data()[i];
      hs[t].data()[i] = orig + kEps;
      double lp = loss_fn();
      hs[t].data()[i] = orig - kEps;
      double lm = loss_fn();
      hs[t].data()[i] = orig;
      EXPECT_NEAR(dhs[t].data()[i], (lp - lm) / (2 * kEps), kTol)
          << "step " << t << " input " << i;
    }
  }
}

TEST(AttentionGradTest, WeightsSumToOne) {
  Rng rng(19);
  TemporalAttention attn(4, 3, &rng);
  std::vector<Matrix> hs;
  for (int t = 0; t < 6; ++t) hs.push_back(RandomMatrix(2, 4, &rng));
  attn.Forward(hs);
  const Matrix& w = attn.last_weights();
  for (size_t r = 0; r < w.rows(); ++r) {
    double sum = 0.0;
    for (size_t t = 0; t < w.cols(); ++t) {
      EXPECT_GE(w(r, t), 0.0);
      sum += w(r, t);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

Tensor3 RandomTensor(size_t b, size_t c, size_t t, Rng* rng) {
  Tensor3 out(b, c, t);
  for (size_t bi = 0; bi < b; ++bi) {
    for (size_t ci = 0; ci < c; ++ci) {
      for (size_t ti = 0; ti < t; ++ti) {
        out(bi, ci, ti) = rng->Gaussian(0.0, 0.5);
      }
    }
  }
  return out;
}

double DotT(const Tensor3& a, const Tensor3& b) {
  double s = 0.0;
  for (size_t bi = 0; bi < a.batch(); ++bi) {
    for (size_t ci = 0; ci < a.channels(); ++ci) {
      for (size_t ti = 0; ti < a.time(); ++ti) {
        s += a(bi, ci, ti) * b(bi, ci, ti);
      }
    }
  }
  return s;
}

TEST(ConvGradTest, CausalConvParamAndInputGrads) {
  Rng rng(23);
  CausalConv1D conv(2, 3, /*kernel=*/3, /*dilation=*/2, &rng);
  Tensor3 x = RandomTensor(2, 2, 9, &rng);
  Tensor3 probe = RandomTensor(2, 3, 9, &rng);
  auto loss_fn = [&]() { return DotT(conv.Forward(x), probe); };
  loss_fn();
  for (auto& p : conv.Params()) p.grad->Fill(0.0);
  Tensor3 dx = conv.Backward(probe);
  CheckParamGrads(conv.Params(), loss_fn);
  for (size_t bi = 0; bi < x.batch(); ++bi) {
    for (size_t ci = 0; ci < x.channels(); ++ci) {
      for (size_t ti = 0; ti < x.time(); ++ti) {
        double orig = x(bi, ci, ti);
        x(bi, ci, ti) = orig + kEps;
        double lp = loss_fn();
        x(bi, ci, ti) = orig - kEps;
        double lm = loss_fn();
        x(bi, ci, ti) = orig;
        EXPECT_NEAR(dx(bi, ci, ti), (lp - lm) / (2 * kEps), kTol);
      }
    }
  }
}

TEST(ConvGradTest, CausalityNoFutureLeak) {
  // Changing input at time t must never change output at time < t.
  Rng rng(29);
  CausalConv1D conv(1, 2, 2, 4, &rng);
  Tensor3 x = RandomTensor(1, 1, 12, &rng);
  Tensor3 base = conv.Forward(x);
  x(0, 0, 7) += 10.0;
  Tensor3 bumped = conv.Forward(x);
  for (size_t c = 0; c < 2; ++c) {
    for (size_t t = 0; t < 7; ++t) {
      EXPECT_DOUBLE_EQ(base(0, c, t), bumped(0, c, t)) << "c=" << c << " t=" << t;
    }
  }
  // And it must change some output at t >= 7 (through the tap at lag 0).
  EXPECT_NE(base(0, 0, 7), bumped(0, 0, 7));
}

TEST(ConvGradTest, TcnBlockParamAndInputGrads) {
  Rng rng(31);
  TCNBlock block(1, 3, 2, 2, &rng);  // includes a 1x1 downsample path
  Tensor3 x = RandomTensor(2, 1, 8, &rng);
  Tensor3 probe = RandomTensor(2, 3, 8, &rng);
  auto loss_fn = [&]() { return DotT(block.Forward(x), probe); };
  loss_fn();
  for (auto& p : block.Params()) p.grad->Fill(0.0);
  Tensor3 dx = block.Backward(probe);
  CheckParamGrads(block.Params(), loss_fn);
  for (size_t bi = 0; bi < x.batch(); ++bi) {
    for (size_t ti = 0; ti < x.time(); ++ti) {
      double orig = x(bi, 0, ti);
      x(bi, 0, ti) = orig + kEps;
      double lp = loss_fn();
      x(bi, 0, ti) = orig - kEps;
      double lm = loss_fn();
      x(bi, 0, ti) = orig;
      EXPECT_NEAR(dx(bi, 0, ti), (lp - lm) / (2 * kEps), kTol);
    }
  }
}

TEST(ClipGradNormTest, ScalesDownOnly) {
  Matrix v1(1, 2, {3.0, 4.0});
  Matrix g1(1, 2, {3.0, 4.0});
  std::vector<Param> params = {{&v1, &g1, "p"}};
  ClipGradNorm(params, 10.0);  // norm 5 < 10: untouched
  EXPECT_DOUBLE_EQ(g1(0, 0), 3.0);
  ClipGradNorm(params, 2.5);  // norm 5 > 2.5: halved
  EXPECT_DOUBLE_EQ(g1(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(g1(0, 1), 2.0);
}

}  // namespace
}  // namespace dbaugur::nn

// Property tests pinning the fused GEMM kernels to the pre-PR naive kernels.
//
// The determinism contract (nn/gemm.h) says every fused/into variant matches
// the naive reference bit-for-bit — same per-element accumulation order — at
// any thread count ON THE SCALAR DISPATCH TIER (the fixture forces it; vector
// tiers are covered by simd_gemm_test at a documented ULP tolerance). These
// tests exercise odd shapes (1xN, Nx1, prime dims), inputs salted with exact
// zeros (the legacy kernels skipped zero operands), and thread counts 1, 2,
// and 4.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "nn/gemm.h"
#include "nn/matrix.h"

namespace dbaugur::nn {
namespace {

struct Shape {
  size_t m, k, n;
};

// Odd shapes: degenerate rows/cols, primes, and one size big enough to cross
// the kernel's parallel threshold with multiple register blocks and column
// panels.
const Shape kShapes[] = {
    {1, 1, 1},  {1, 7, 1},   {7, 1, 13},  {1, 13, 31}, {31, 1, 1},
    {5, 3, 2},  {13, 7, 31}, {31, 31, 31}, {2, 64, 3},  {97, 89, 101},
};

Matrix RandomWithZeros(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      // ~1/4 exact zeros so the removed zero-skip branch is exercised.
      double u = rng->Uniform();
      m(i, j) = u < 0.25 ? 0.0 : (u - 0.5) * 4.0;
    }
  }
  return m;
}

void ExpectBitIdentical(const Matrix& got, const Matrix& want,
                        const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i])
        << what << " diverges at flat index " << i;
  }
}

// Runs `body` with the gemm pool unset and then set to 2 and 4 threads,
// asserting the produced matrix is bit-identical across all three.
template <typename Body>
void ForEachThreadCount(Body body, const char* what) {
  SetGemmThreadPool(nullptr);
  Matrix base = body();
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    SetGemmThreadPool(&pool);
    Matrix got = body();
    SetGemmThreadPool(nullptr);
    ExpectBitIdentical(got, base, what);
  }
}

class KernelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(simd::ForceTier(simd::Tier::kScalar));
  }
  void TearDown() override {
    simd::ResetForcedTier();
    SetGemmThreadPool(nullptr);
  }
  Rng rng_{20240817};
};

TEST_F(KernelEquivalenceTest, MatMulMatchesNaiveReference) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.k, s.n, &rng_);
    Matrix want(s.m, s.n, 0.0);
    ref::MatMul(s.m, s.k, s.n, a.data(), b.data(), want.data());
    ForEachThreadCount([&] { return a.MatMul(b); }, "MatMul");
    ExpectBitIdentical(a.MatMul(b), want, "MatMul vs ref");
  }
}

TEST_F(KernelEquivalenceTest, AddMatMulMatchesNaiveAccumulate) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.k, s.n, &rng_);
    Matrix seed = RandomWithZeros(s.m, s.n, &rng_);
    Matrix want = seed;
    ref::MatMul(s.m, s.k, s.n, a.data(), b.data(), want.data());
    ForEachThreadCount(
        [&] {
          Matrix c = seed;
          c.AddMatMul(a, b);
          return c;
        },
        "AddMatMul");
    Matrix got = seed;
    got.AddMatMul(a, b);
    ExpectBitIdentical(got, want, "AddMatMul vs ref");
  }
}

TEST_F(KernelEquivalenceTest, TransposeMatMulMatchesNaiveReference) {
  for (const Shape& s : kShapes) {
    // a is (m x k); a^T * b with b (m x n) gives (k x n).
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.m, s.n, &rng_);
    Matrix want(s.k, s.n, 0.0);
    ref::TransposeMatMul(s.m, s.k, s.n, a.data(), b.data(), want.data());
    ForEachThreadCount([&] { return a.TransposeMatMul(b); },
                       "TransposeMatMul");
    ExpectBitIdentical(a.TransposeMatMul(b), want, "TransposeMatMul vs ref");
  }
}

TEST_F(KernelEquivalenceTest, AddTransposeMatMulMatchesNaiveAccumulate) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.m, s.n, &rng_);
    Matrix seed = RandomWithZeros(s.k, s.n, &rng_);
    Matrix want = seed;
    ref::TransposeMatMul(s.m, s.k, s.n, a.data(), b.data(), want.data());
    ForEachThreadCount(
        [&] {
          Matrix c = seed;
          c.AddTransposeMatMul(a, b);
          return c;
        },
        "AddTransposeMatMul");
    Matrix got = seed;
    got.AddTransposeMatMul(a, b);
    ExpectBitIdentical(got, want, "AddTransposeMatMul vs ref");
  }
}

TEST_F(KernelEquivalenceTest, MatMulTransposeMatchesNaiveReference) {
  for (const Shape& s : kShapes) {
    // a (m x k) * b^T with b (n x k) gives (m x n).
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.n, s.k, &rng_);
    Matrix want(s.m, s.n, 0.0);
    ref::MatMulTranspose(s.m, s.k, s.n, a.data(), b.data(), want.data());
    ForEachThreadCount([&] { return a.MatMulTranspose(b); },
                       "MatMulTranspose");
    ExpectBitIdentical(a.MatMulTranspose(b), want, "MatMulTranspose vs ref");
  }
}

TEST_F(KernelEquivalenceTest, AddMatMulTransposeMatchesNaiveAccumulate) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.n, s.k, &rng_);
    Matrix seed = RandomWithZeros(s.m, s.n, &rng_);
    // ref::MatMulTranspose overwrites, so build the accumulate answer by hand
    // with the same per-element order (seed + ascending-kk dot).
    Matrix prod(s.m, s.n, 0.0);
    ref::MatMulTranspose(s.m, s.k, s.n, a.data(), b.data(), prod.data());
    Matrix want = seed;
    want.Add(prod);
    ForEachThreadCount(
        [&] {
          Matrix c = seed;
          c.AddMatMulTranspose(a, b);
          return c;
        },
        "AddMatMulTranspose");
    Matrix got = seed;
    got.AddMatMulTranspose(a, b);
    ExpectBitIdentical(got, want, "AddMatMulTranspose vs ref");
  }
}

TEST_F(KernelEquivalenceTest, IntoVariantsMatchAllocatingForms) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.k, &rng_);
    Matrix b = RandomWithZeros(s.k, s.n, &rng_);
    Matrix into;
    into.MatMulInto(a, b);
    ExpectBitIdentical(into, a.MatMul(b), "MatMulInto");

    Matrix bt = RandomWithZeros(s.n, s.k, &rng_);
    Matrix into2;
    into2.MatMulTransposeInto(a, bt);
    ExpectBitIdentical(into2, a.MatMulTranspose(bt), "MatMulTransposeInto");

    Matrix bm = RandomWithZeros(s.m, s.n, &rng_);
    Matrix into3;
    into3.TransposeMatMulInto(a, bm);
    ExpectBitIdentical(into3, a.TransposeMatMul(bm), "TransposeMatMulInto");
  }
}

TEST_F(KernelEquivalenceTest, BlockedTransposedMatchesElementwise) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.n, &rng_);
    Matrix t = a.Transposed();
    ASSERT_EQ(t.rows(), a.cols());
    ASSERT_EQ(t.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) {
        ASSERT_EQ(t(j, i), a(i, j)) << "Transposed mismatch at " << i << ","
                                    << j;
      }
    }
  }
}

TEST_F(KernelEquivalenceTest, AddColSumOfMatchesColSum) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomWithZeros(s.m, s.n, &rng_);
    Matrix seed = RandomWithZeros(1, s.n, &rng_);
    // Naive direct accumulation into the seed (same per-element order as the
    // fused kernel; going through ColSum() + Add would reassociate the sums).
    Matrix want = seed;
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) want(0, j) += a(i, j);
    }
    Matrix got = seed;
    got.AddColSumOf(a);
    ExpectBitIdentical(got, want, "AddColSumOf");
  }
}

}  // namespace
}  // namespace dbaugur::nn

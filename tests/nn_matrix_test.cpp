// Unit tests for the Matrix/Tensor3 containers and the loss functions.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/matrix.h"

namespace dbaugur::nn {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromData) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(MatrixTest, MatMul) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposeMatMulAgreesWithExplicit) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 4, {1, 0, 2, 1, 3, 1, 0, 2, 2, 2, 1, 1});
  Matrix direct = a.Transposed().MatMul(b);
  Matrix fused = a.TransposeMatMul(b);
  ASSERT_TRUE(direct.SameShape(fused));
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_DOUBLE_EQ(direct(i, j), fused(i, j));
    }
  }
}

TEST(MatrixTest, MatMulTransposeAgreesWithExplicit) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(4, 3, {1, 0, 2, 1, 3, 1, 0, 2, 2, 2, 1, 1});
  Matrix direct = a.MatMul(b.Transposed());
  Matrix fused = a.MatMulTranspose(b);
  ASSERT_TRUE(direct.SameShape(fused));
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_DOUBLE_EQ(direct(i, j), fused(i, j));
    }
  }
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 5);
  a.Sub(b);
  EXPECT_DOUBLE_EQ(a(0, 2), 3);
  a.Hadamard(b);
  EXPECT_DOUBLE_EQ(a(0, 1), 10);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2);
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 10);
}

TEST(MatrixTest, AddRowVectorAndColSum) {
  Matrix m(2, 2, {1, 2, 3, 4});
  Matrix v(1, 2, {10, 20});
  m.AddRowVector(v);
  EXPECT_DOUBLE_EQ(m(0, 0), 11);
  EXPECT_DOUBLE_EQ(m(1, 1), 24);
  Matrix cs = m.ColSum();
  EXPECT_DOUBLE_EQ(cs(0, 0), 24);
  EXPECT_DOUBLE_EQ(cs(0, 1), 46);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m(1, 3, {1, 2, 2});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 9.0);
}

TEST(Tensor3Test, IndexingAndLanes) {
  Tensor3 t(2, 3, 4, 0.0);
  t(1, 2, 3) = 7.0;
  EXPECT_DOUBLE_EQ(t(1, 2, 3), 7.0);
  EXPECT_DOUBLE_EQ(t.lane(1, 2)[3], 7.0);
  Tensor3 u(2, 3, 4, 1.0);
  t.Add(u);
  EXPECT_DOUBLE_EQ(t(1, 2, 3), 8.0);
  EXPECT_DOUBLE_EQ(t(0, 0, 0), 1.0);
}

TEST(LossTest, MseValueAndGrad) {
  Matrix pred(2, 1, {1.0, 3.0});
  Matrix target(2, 1, {0.0, 5.0});
  Matrix grad;
  double loss = MSELoss(pred, target, &grad);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 0), 2.0 * 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(grad(1, 0), 2.0 * -2.0 / 2.0, 1e-12);
}

TEST(LossTest, BceMatchesHandComputed) {
  Matrix logits(1, 1, {0.0});
  Matrix ones(1, 1, {1.0});
  Matrix grad;
  double loss = BCEWithLogitsLoss(logits, ones, &grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);        // -log sigmoid(0)
  EXPECT_NEAR(grad(0, 0), 0.5 - 1.0, 1e-12);      // sigmoid(0) - 1
}

TEST(LossTest, BceStableForHugeLogits) {
  Matrix logits(1, 2, {1000.0, -1000.0});
  Matrix targets(1, 2, {1.0, 0.0});
  Matrix grad;
  double loss = BCEWithLogitsLoss(logits, targets, &grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(LossTest, GeneratorLossGradSigns) {
  // With a low fake logit, the non-saturating loss pushes the logit up.
  Matrix logits(1, 1, {-3.0});
  Matrix grad;
  double loss = GeneratorGanLoss(logits, &grad);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(grad(0, 0), 0.0);  // gradient descent increases the logit
}

TEST(LossTest, SaturatingGeneratorLossFiniteGradVanishes) {
  // The saturating variant has a near-zero gradient for very low logits —
  // the well-known failure mode the non-saturating loss avoids.
  Matrix low(1, 1, {-20.0});
  Matrix grad_low;
  GeneratorGanLossSaturating(low, &grad_low);
  Matrix grad_ns;
  GeneratorGanLoss(low, &grad_ns);
  EXPECT_LT(std::fabs(grad_low(0, 0)), 1e-6);
  EXPECT_GT(std::fabs(grad_ns(0, 0)), 0.5);
}

TEST(LossTest, NumericalGradMse) {
  Matrix pred(2, 2, {0.3, -0.7, 1.2, 0.1});
  Matrix target(2, 2, {0.0, 0.5, 1.0, -0.2});
  Matrix grad;
  MSELoss(pred, target, &grad);
  double eps = 1e-6;
  for (size_t i = 0; i < pred.size(); ++i) {
    Matrix p2 = pred;
    p2.data()[i] += eps;
    double lp = MSELoss(p2, target, nullptr);
    p2.data()[i] -= 2 * eps;
    double lm = MSELoss(p2, target, nullptr);
    EXPECT_NEAR(grad.data()[i], (lp - lm) / (2 * eps), 1e-6);
  }
}

TEST(LossTest, NumericalGradBce) {
  Matrix logits(2, 2, {0.3, -0.7, 1.2, 0.1});
  Matrix target(2, 2, {1.0, 0.0, 1.0, 0.0});
  Matrix grad;
  BCEWithLogitsLoss(logits, target, &grad);
  double eps = 1e-6;
  for (size_t i = 0; i < logits.size(); ++i) {
    Matrix l2 = logits;
    l2.data()[i] += eps;
    double lp = BCEWithLogitsLoss(l2, target, nullptr);
    l2.data()[i] -= 2 * eps;
    double lm = BCEWithLogitsLoss(l2, target, nullptr);
    EXPECT_NEAR(grad.data()[i], (lp - lm) / (2 * eps), 1e-6);
  }
}

// Shape contracts are DBAUGUR_CHECK-tier: they must abort in every build
// type, including the default Release (-DNDEBUG) one this test runs under.
TEST(MatrixDeathTest, ShapeMismatchAbortsInEveryBuildType) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_DEATH(a.Add(b), "Matrix::Add shape mismatch: 2x3 vs 3x2");
  EXPECT_DEATH(a.Hadamard(b), "Matrix::Hadamard shape mismatch");
  EXPECT_DEATH(a.MatMul(a), "lhs=3 rhs=2 \\| Matrix::MatMul inner dimensions");
  EXPECT_DEATH(Matrix(2, 2, {1.0, 2.0, 3.0}),
               "Matrix data does not match shape 2x2");
}

TEST(LossDeathTest, ShapeMismatchAborts) {
  Matrix pred(2, 2), target(2, 3);
  EXPECT_DEATH(MSELoss(pred, target, nullptr), "MSELoss shape mismatch");
  EXPECT_DEATH(BCEWithLogitsLoss(pred, target, nullptr),
               "BCEWithLogitsLoss shape mismatch");
}

}  // namespace
}  // namespace dbaugur::nn

// Round-trip tests for nn/serialize.cpp through real trained models.
//
// Weights are stored as float32, so a serialize/deserialize round trip
// truncates doubles. The tests therefore compare two models that both carry
// the same truncated weights (deserializing a model's own buffer back into
// itself makes it bit-comparable with a restored copy).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "models/lstm_forecaster.h"
#include "models/mlp.h"
#include "models/tcn.h"
#include "models/wfgan.h"
#include "nn/serialize.h"

namespace dbaugur::nn {
namespace {

std::vector<double> SyntheticSeries(size_t n) {
  std::vector<double> s(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    s[i] = 50.0 + 20.0 * std::sin(t * 0.3) + 5.0 * std::sin(t * 1.7);
  }
  return s;
}

models::ForecasterOptions SmallOptions() {
  models::ForecasterOptions opts;
  opts.window = 8;
  opts.horizon = 1;
  opts.epochs = 2;
  opts.batch_size = 16;
  return opts;
}

TEST(SerializeTest, MlpRoundTripRestoresForecasts) {
  std::vector<double> series = SyntheticSeries(120);
  models::ForecasterOptions opts = SmallOptions();

  models::MlpForecaster trained(opts);
  ASSERT_TRUE(trained.Fit(series).ok());
  std::vector<uint8_t> buf = SerializeParams(trained.Params());
  EXPECT_EQ(static_cast<int64_t>(buf.size()), trained.StorageBytes());

  // Restore into a model with different initial weights (different seed) but
  // the same architecture and scaler (fitted on the same series).
  opts.seed = 7;
  models::MlpForecaster restored(opts);
  ASSERT_TRUE(restored.Fit(series).ok());
  std::vector<Param> restored_params = restored.Params();
  ASSERT_TRUE(DeserializeParams(buf, restored_params).ok());

  // Truncate the trained model to float32 too, so both hold identical bits.
  std::vector<Param> trained_params = trained.Params();
  ASSERT_TRUE(DeserializeParams(buf, trained_params).ok());

  std::vector<double> window(series.end() - static_cast<long>(opts.window),
                             series.end());
  auto a = trained.Predict(window);
  auto b = restored.Predict(window);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b) << "restored MLP forecast differs from the original";

  // Re-serializing the restored model reproduces the buffer byte for byte.
  EXPECT_EQ(SerializeParams(restored.Params()), buf);
}

TEST(SerializeTest, LstmRoundTripRestoresForecasts) {
  std::vector<double> series = SyntheticSeries(120);
  models::ForecasterOptions opts = SmallOptions();
  models::LstmOptions lopts;
  lopts.hidden = 8;

  models::LstmForecaster trained(opts, lopts);
  ASSERT_TRUE(trained.Fit(series).ok());
  std::vector<uint8_t> buf = SerializeParams(trained.Params());
  EXPECT_EQ(static_cast<int64_t>(buf.size()), trained.StorageBytes());

  opts.seed = 9;
  models::LstmForecaster restored(opts, lopts);
  ASSERT_TRUE(restored.Fit(series).ok());
  std::vector<Param> restored_params = restored.Params();
  ASSERT_TRUE(DeserializeParams(buf, restored_params).ok());
  std::vector<Param> trained_params = trained.Params();
  ASSERT_TRUE(DeserializeParams(buf, trained_params).ok());

  std::vector<double> window(series.end() - static_cast<long>(opts.window),
                             series.end());
  auto a = trained.Predict(window);
  auto b = restored.Predict(window);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b) << "restored LSTM forecast differs from the original";

  EXPECT_EQ(SerializeParams(restored.Params()), buf);
}

TEST(SerializeTest, RejectsBadMagic) {
  Matrix v(2, 3, 1.5), g(2, 3);
  std::vector<Param> params = {{&v, &g, "w"}};
  std::vector<uint8_t> buf = SerializeParams(params);
  buf[0] ^= 0xFF;
  Status st = DeserializeParams(buf, params);
  EXPECT_FALSE(st.ok());
}

TEST(SerializeTest, RejectsCountMismatch) {
  Matrix v(2, 3, 1.5), g(2, 3);
  Matrix v2(1, 4, 0.5), g2(1, 4);
  std::vector<Param> both = {{&v, &g, "w"}, {&v2, &g2, "b"}};
  std::vector<uint8_t> buf = SerializeParams(both);
  std::vector<Param> fewer = {{&v, &g, "w"}};
  EXPECT_FALSE(DeserializeParams(buf, fewer).ok());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Matrix v(2, 3, 1.5), g(2, 3);
  std::vector<Param> src = {{&v, &g, "w"}};
  std::vector<uint8_t> buf = SerializeParams(src);
  Matrix w(3, 2, 0.0), gw(3, 2);
  std::vector<Param> dst = {{&w, &gw, "w"}};
  EXPECT_FALSE(DeserializeParams(buf, dst).ok());
}

TEST(SerializeTest, RejectsTruncatedBuffer) {
  Matrix v(4, 4, 2.0), g(4, 4);
  std::vector<Param> params = {{&v, &g, "w"}};
  std::vector<uint8_t> buf = SerializeParams(params);
  buf.resize(buf.size() - 5);
  EXPECT_FALSE(DeserializeParams(buf, params).ok());
}

TEST(SerializeTest, F64RoundTripIsBitExact) {
  // Values chosen to lose bits under a float32 round trip.
  Matrix v(2, 2);
  v(0, 0) = 1.0 / 3.0;
  v(0, 1) = 1e-300;
  v(1, 0) = -0.0;
  v(1, 1) = 123456789.123456789;
  Matrix g(2, 2);
  std::vector<Param> src = {{&v, &g, "w"}};
  std::vector<uint8_t> f64 = SerializeParamsF64(src);

  Matrix w(2, 2, 0.0), gw(2, 2);
  std::vector<Param> dst = {{&w, &gw, "w"}};
  ASSERT_TRUE(DeserializeParams(f64, dst).ok());  // dispatches on magic
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(w(r, c), v(r, c)) << r << "," << c;
    }
  }
  // The float32 format loses precision on the same values.
  std::vector<uint8_t> f32 = SerializeParams(src);
  Matrix w32(2, 2, 0.0), gw32(2, 2);
  std::vector<Param> dst32 = {{&w32, &gw32, "w"}};
  ASSERT_TRUE(DeserializeParams(f32, dst32).ok());
  EXPECT_NE(w32(0, 1), v(0, 1));  // 1e-300 underflows float32
}

TEST(SerializeTest, F64RejectsTruncationAndShapeMismatch) {
  Matrix v(3, 3, 0.25), g(3, 3);
  std::vector<Param> src = {{&v, &g, "w"}};
  std::vector<uint8_t> buf = SerializeParamsF64(src);
  std::vector<uint8_t> cut = buf;
  cut.resize(cut.size() - 3);
  EXPECT_FALSE(DeserializeParams(cut, src).ok());
  Matrix w(3, 2, 0.0), gw(3, 2);
  std::vector<Param> bad = {{&w, &gw, "w"}};
  EXPECT_FALSE(DeserializeParams(buf, bad).ok());
}

// Model-level state round trips: every ensemble member must restore to
// bit-identical forecasts from SaveState/LoadState (float64 + scalers).
template <typename Model>
void ExpectStateRoundTripBitExact(const models::ForecasterOptions& opts) {
  std::vector<double> series = SyntheticSeries(120);
  Model model(opts);
  ASSERT_TRUE(model.Fit(series).ok());
  auto blob = model.SaveState();
  ASSERT_TRUE(blob.ok());

  Model restored(opts);
  ASSERT_TRUE(restored.LoadState(*blob).ok());
  std::vector<double> w(series.end() - static_cast<ptrdiff_t>(opts.window),
                        series.end());
  auto a = model.Predict(w);
  auto b = restored.Predict(w);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  // Corruption is rejected and the target stays un-fitted.
  Model fresh(opts);
  std::vector<uint8_t> bad = *blob;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(fresh.LoadState(bad).ok());
  EXPECT_FALSE(fresh.Predict(w).ok());
}

TEST(ModelStateTest, MlpRoundTripBitExact) {
  models::ForecasterOptions opts = SmallOptions();
  ExpectStateRoundTripBitExact<models::MlpForecaster>(opts);
}

TEST(ModelStateTest, LstmRoundTripBitExact) {
  models::ForecasterOptions opts = SmallOptions();
  ExpectStateRoundTripBitExact<models::LstmForecaster>(opts);
}

TEST(ModelStateTest, TcnRoundTripBitExact) {
  models::ForecasterOptions opts = SmallOptions();
  ExpectStateRoundTripBitExact<models::TcnForecaster>(opts);
}

TEST(ModelStateTest, WfganRoundTripBitExact) {
  models::ForecasterOptions opts = SmallOptions();
  opts.epochs = 1;  // GAN epochs are the slow part; weights is what we test
  ExpectStateRoundTripBitExact<models::WfganForecaster>(opts);
}

}  // namespace
}  // namespace dbaugur::nn

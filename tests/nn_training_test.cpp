// Tests for the optimizers and end-to-end layer training dynamics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "models/neural_common.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"

namespace dbaugur::nn {
namespace {

TEST(SgdTest, SingleStepMatchesHandComputed) {
  Matrix v(1, 2, {1.0, 2.0});
  Matrix g(1, 2, {0.5, -1.0});
  std::vector<Param> params = {{&v, &g, "p"}};
  SGD sgd(0.1);
  sgd.Step(params);
  EXPECT_DOUBLE_EQ(v(0, 0), 0.95);
  EXPECT_DOUBLE_EQ(v(0, 1), 2.1);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, Adam's first step is ~lr * sign(grad).
  Matrix v(1, 2, {0.0, 0.0});
  Matrix g(1, 2, {3.0, -0.01});
  std::vector<Param> params = {{&v, &g, "p"}};
  Adam adam(0.1);
  adam.Step(params);
  EXPECT_NEAR(v(0, 0), -0.1, 1e-6);
  EXPECT_NEAR(v(0, 1), 0.1, 1e-4);
}

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2; gradient 2(x-3).
  Matrix v(1, 1, {-5.0});
  Matrix g(1, 1);
  std::vector<Param> params = {{&v, &g, "x"}};
  Adam adam(0.2);
  for (int i = 0; i < 300; ++i) {
    g(0, 0) = 2.0 * (v(0, 0) - 3.0);
    adam.Step(params);
  }
  EXPECT_NEAR(v(0, 0), 3.0, 0.05);
}

TEST(AdamTest, ResetClearsState) {
  Matrix v(1, 1, {0.0});
  Matrix g(1, 1, {1.0});
  std::vector<Param> params = {{&v, &g, "x"}};
  Adam adam(0.1);
  adam.Step(params);
  double after_one = v(0, 0);
  adam.Reset();
  Matrix v2(1, 1, {0.0});
  Matrix g2(1, 1, {1.0});
  std::vector<Param> params2 = {{&v2, &g2, "x"}};
  adam.Step(params2);
  EXPECT_DOUBLE_EQ(v2(0, 0), after_one);
}

TEST(AdamTest, RebindsWhenParamSetChanges) {
  Matrix v(1, 1, {0.0});
  Matrix g(1, 1, {1.0});
  std::vector<Param> params = {{&v, &g, "x"}};
  Adam adam(0.1);
  adam.Step(params);
  // Different shape list: optimizer must re-initialize, not crash.
  Matrix v2(2, 2, 0.0);
  Matrix g2(2, 2, 1.0);
  std::vector<Param> params2 = {{&v2, &g2, "y"}};
  adam.Step(params2);
  EXPECT_NEAR(v2(0, 0), -0.1, 1e-6);
}

TEST(DenseTrainingTest, LearnsLinearMap) {
  // y = 2x1 - x2 + 0.5, one Dense(2,1,identity) trained with Adam+MSE.
  Rng rng(5);
  Dense layer(2, 1, Activation::kIdentity, &rng);
  Adam adam(0.05);
  auto params = layer.Params();
  for (int step = 0; step < 500; ++step) {
    Matrix x(8, 2);
    Matrix y(8, 1);
    for (size_t r = 0; r < 8; ++r) {
      x(r, 0) = rng.Gaussian();
      x(r, 1) = rng.Gaussian();
      y(r, 0) = 2.0 * x(r, 0) - x(r, 1) + 0.5;
    }
    Matrix pred = layer.Forward(x);
    Matrix grad;
    MSELoss(pred, y, &grad);
    layer.ZeroGrad();
    layer.Backward(grad);
    adam.Step(params);
  }
  EXPECT_NEAR(layer.weight()(0, 0), 2.0, 0.05);
  EXPECT_NEAR(layer.weight()(1, 0), -1.0, 0.05);
  EXPECT_NEAR(layer.bias()(0, 0), 0.5, 0.05);
}

TEST(LstmTrainingTest, LearnsToSumSequence) {
  // Target: sum of a length-5 input sequence. LSTM(1->8) + Dense(8->1).
  Rng rng(7);
  LSTM lstm(1, 8, &rng);
  Dense head(8, 1, Activation::kIdentity, &rng);
  Adam adam(0.01);
  std::vector<Param> params = lstm.Params();
  for (auto& p : head.Params()) params.push_back(p);
  double final_loss = 1e9;
  for (int step = 0; step < 800; ++step) {
    std::vector<Matrix> xs(5, Matrix(16, 1));
    Matrix y(16, 1);
    for (size_t r = 0; r < 16; ++r) {
      double sum = 0;
      for (size_t t = 0; t < 5; ++t) {
        double v = rng.Uniform(-0.5, 0.5);
        xs[t](r, 0) = v;
        sum += v;
      }
      y(r, 0) = sum;
    }
    auto hs = lstm.ForwardSequence(xs);
    Matrix pred = head.Forward(hs.back());
    Matrix grad;
    final_loss = MSELoss(pred, y, &grad);
    for (auto& p : params) p.grad->Fill(0.0);
    Matrix dh = head.Backward(grad);
    std::vector<Matrix> grad_hs(hs.size(), Matrix(16, 8));
    grad_hs.back() = dh;
    lstm.BackwardSequence(grad_hs);
    ClipGradNorm(params, 5.0);
    adam.Step(params);
  }
  // Variance of the target is 5/12 ~ 0.42; the net must beat that hugely.
  EXPECT_LT(final_loss, 0.02);
}

TEST(NeuralCommonTest, BatchLayouts) {
  std::vector<ts::WindowSample> samples(3);
  for (size_t i = 0; i < 3; ++i) {
    samples[i].window = {static_cast<double>(i), static_cast<double>(i + 1)};
    samples[i].target = static_cast<double>(10 * i);
  }
  std::vector<size_t> idx = {2, 0, 1};
  Matrix xb = models::BatchWindows(samples, idx, 0, 3);
  Matrix yb = models::BatchTargets(samples, idx, 0, 3);
  EXPECT_DOUBLE_EQ(xb(0, 0), 2.0);  // sample 2 first
  EXPECT_DOUBLE_EQ(xb(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(yb(0, 0), 20.0);
  auto tm = models::ToTimeMajor(xb);
  ASSERT_EQ(tm.size(), 2u);
  EXPECT_DOUBLE_EQ(tm[0](0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tm[1](2, 0), 2.0);
  auto t3 = models::ToTensor3(xb);
  EXPECT_EQ(t3.batch(), 3u);
  EXPECT_EQ(t3.channels(), 1u);
  EXPECT_EQ(t3.time(), 2u);
  EXPECT_DOUBLE_EQ(t3(0, 0, 0), 2.0);
}

TEST(NeuralCommonTest, ScaledDatasetInvertsToRaw) {
  std::vector<double> series = {10, 20, 30, 40, 50, 60, 70, 80};
  models::ForecasterOptions opts;
  opts.window = 3;
  opts.horizon = 1;
  auto ds = models::BuildScaledDataset(series, opts);
  ASSERT_TRUE(ds.ok());
  for (const auto& s : ds->samples) {
    for (double w : s.window) {
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0);
    }
    EXPECT_NEAR(ds->scaler.Inverse(s.target), series[s.target_index], 1e-9);
  }
}

}  // namespace
}  // namespace dbaugur::nn

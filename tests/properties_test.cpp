// Property-based tests (parameterized sweeps) on the library's core
// invariants: DTW metric-like properties across window sizes, lower-bound
// soundness, scaler round-trips, templater idempotence, window-dataset
// alignment, serialization round-trips, and ensemble weight normalization.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dtw/dtw.h"
#include "ensemble/time_sensitive_ensemble.h"
#include "models/mlp.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/serialize.h"
#include "sql/templater.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = scale * rng.Gaussian();
  return v;
}

// ---------- DTW properties across window sizes ----------

class DtwWindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(DtwWindowProperty, SelfDistanceZero) {
  auto v = RandomSeries(64, 11);
  auto d = dtw::DtwDistance(v, v, {GetParam()});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST_P(DtwWindowProperty, Symmetry) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto a = RandomSeries(48, 100 + seed);
    auto b = RandomSeries(48, 200 + seed);
    auto ab = dtw::DtwDistance(a, b, {GetParam()});
    auto ba = dtw::DtwDistance(b, a, {GetParam()});
    ASSERT_TRUE(ab.ok());
    ASSERT_TRUE(ba.ok());
    EXPECT_NEAR(*ab, *ba, 1e-9);
  }
}

TEST_P(DtwWindowProperty, NonNegativeAndBoundedByEuclidean) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto a = RandomSeries(48, 300 + seed);
    auto b = RandomSeries(48, 400 + seed);
    auto d = dtw::DtwDistance(a, b, {GetParam()});
    ASSERT_TRUE(d.ok());
    EXPECT_GE(*d, 0.0);
    double euclid = 0;
    for (size_t i = 0; i < a.size(); ++i) euclid += (a[i] - b[i]) * (a[i] - b[i]);
    EXPECT_LE(*d, std::sqrt(euclid) + 1e-9);
  }
}

TEST_P(DtwWindowProperty, WiderWindowNeverIncreasesDistance) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto a = RandomSeries(48, 500 + seed);
    auto b = RandomSeries(48, 600 + seed);
    auto narrow = dtw::DtwDistance(a, b, {GetParam()});
    auto wider = dtw::DtwDistance(a, b, {GetParam() + 5});
    ASSERT_TRUE(narrow.ok());
    ASSERT_TRUE(wider.ok());
    EXPECT_LE(*wider, *narrow + 1e-9);
  }
}

TEST_P(DtwWindowProperty, LowerBoundsAreSound) {
  int w = GetParam();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto a = RandomSeries(40, 700 + seed);
    auto b = RandomSeries(40, 800 + seed);
    auto d = dtw::DtwDistance(a, b, {w});
    ASSERT_TRUE(d.ok());
    EXPECT_LE(dtw::LbKim(a, b), *d + 1e-9);
    EXPECT_LE(dtw::LbKeogh(a, dtw::BuildEnvelope(b, w)), *d + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, DtwWindowProperty,
                         ::testing::Values(0, 1, 2, 5, 10, 20, 48));

// ---------- scaler round-trips across scales ----------

class ScalerProperty : public ::testing::TestWithParam<double> {};

TEST_P(ScalerProperty, MinMaxRoundTrip) {
  auto v = RandomSeries(200, 31, GetParam());
  ts::MinMaxScaler s;
  ASSERT_TRUE(s.Fit(v).ok());
  for (size_t i = 0; i < v.size(); i += 13) {
    double t = s.Transform(v[i]);
    EXPECT_GE(t, -1e-12);
    EXPECT_LE(t, 1.0 + 1e-12);
    EXPECT_NEAR(s.Inverse(t), v[i], 1e-9 * std::max(1.0, GetParam()));
  }
}

TEST_P(ScalerProperty, StandardRoundTripAndMoments) {
  auto v = RandomSeries(500, 37, GetParam());
  ts::StandardScaler s;
  ASSERT_TRUE(s.Fit(v).ok());
  auto scaled = s.Transform(v);
  double mean = 0;
  for (double x : scaled) mean += x;
  mean /= static_cast<double>(scaled.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  for (size_t i = 0; i < v.size(); i += 17) {
    EXPECT_NEAR(s.Inverse(scaled[i]), v[i], 1e-9 * std::max(1.0, GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ScalerProperty,
                         ::testing::Values(1e-3, 1.0, 1e3, 1e6));

// ---------- templater idempotence over statement shapes ----------

class TemplaterProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(TemplaterProperty, Idempotent) {
  auto once = sql::ToTemplate(GetParam());
  ASSERT_TRUE(once.ok()) << GetParam();
  auto twice = sql::ToTemplate(*once);
  ASSERT_TRUE(twice.ok()) << *once;
  EXPECT_EQ(*once, *twice);
}

TEST_P(TemplaterProperty, FingerprintStable) {
  auto t = sql::ToTemplate(GetParam());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(sql::Fingerprint(*t), sql::Fingerprint(*t));
}

INSTANTIATE_TEST_SUITE_P(
    Statements, TemplaterProperty,
    ::testing::Values(
        "SELECT * FROM t WHERE id = 5",
        "SELECT a, c, b FROM t WHERE x > 3 AND y < 2",
        "SELECT * FROM B JOIN A ON B.id = A.id",
        "UPDATE t SET a = 1, b = 'x' WHERE k = 9",
        "SELECT * FROM t WHERE id IN (1, 2, 3) AND name = 'bob'",
        "SELECT count FROM t WHERE 7 = id",
        "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3",
        "SELECT DISTINCT b, a FROM t"));

// ---------- window dataset alignment across (window, horizon) ----------

class WindowProperty
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(WindowProperty, TargetsAlignedWithSource) {
  auto [w, h] = GetParam();
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto ws = ts::MakeWindows(v, {w, h, 1});
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), v.size() - w - h + 1);
  for (const auto& s : *ws) {
    ASSERT_EQ(s.window.size(), w);
    // Window is consecutive integers; target is horizon past the end.
    for (size_t j = 1; j < w; ++j) {
      EXPECT_DOUBLE_EQ(s.window[j], s.window[j - 1] + 1.0);
    }
    EXPECT_DOUBLE_EQ(s.target, s.window.back() + static_cast<double>(h));
    EXPECT_DOUBLE_EQ(v[s.target_index], s.target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowProperty,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{5, 1},
                      std::pair<size_t, size_t>{30, 1},
                      std::pair<size_t, size_t>{10, 7},
                      std::pair<size_t, size_t>{30, 36},
                      std::pair<size_t, size_t>{60, 36}));

// ---------- serialization round-trips across layer shapes ----------

class SerializeProperty
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SerializeProperty, DenseRoundTrip) {
  auto [in, out] = GetParam();
  Rng rng(41);
  nn::Dense a(in, out, nn::Activation::kTanh, &rng);
  nn::Dense b(in, out, nn::Activation::kTanh, &rng);  // different init
  auto params_a = a.Params();
  auto params_b = b.Params();
  auto bytes = nn::SerializeParams(params_a);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()), nn::StorageBytes(params_a));
  ASSERT_TRUE(nn::DeserializeParams(bytes, params_b).ok());
  // float32 round-trip tolerance.
  for (size_t p = 0; p < params_a.size(); ++p) {
    for (size_t i = 0; i < params_a[p].value->size(); ++i) {
      EXPECT_NEAR(params_b[p].value->data()[i], params_a[p].value->data()[i],
                  1e-6);
    }
  }
}

TEST_P(SerializeProperty, CorruptBufferRejected) {
  auto [in, out] = GetParam();
  Rng rng(43);
  nn::Dense a(in, out, nn::Activation::kIdentity, &rng);
  auto params = a.Params();
  auto bytes = nn::SerializeParams(params);
  bytes.resize(bytes.size() / 2);  // truncate
  EXPECT_FALSE(nn::DeserializeParams(bytes, params).ok());
  std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(nn::DeserializeParams(garbage, params).ok());
}

INSTANTIATE_TEST_SUITE_P(Shapes, SerializeProperty,
                         ::testing::Values(std::pair<size_t, size_t>{1, 1},
                                           std::pair<size_t, size_t>{4, 7},
                                           std::pair<size_t, size_t>{30, 1},
                                           std::pair<size_t, size_t>{16, 32}));

// ---------- ensemble weights normalize for any member count ----------

class EnsembleSizeProperty : public ::testing::TestWithParam<size_t> {};

class FixedPrediction : public models::Forecaster {
 public:
  explicit FixedPrediction(double v) : v_(v) {}
  Status Fit(const std::vector<double>&) override { return Status::OK(); }
  StatusOr<double> Predict(const std::vector<double>&) const override {
    return v_;
  }
  std::string name() const override { return "Fixed"; }
  int64_t StorageBytes() const override { return 8; }

 private:
  double v_;
};

TEST_P(EnsembleSizeProperty, WeightsSumToOneAfterObservations) {
  size_t n = GetParam();
  models::ForecasterOptions opts;
  opts.window = 4;
  ensemble::TimeSensitiveEnsemble ens(opts, {0.9, true});
  for (size_t i = 0; i < n; ++i) {
    ens.AddMember(std::make_unique<FixedPrediction>(static_cast<double>(i)));
  }
  ASSERT_TRUE(ens.Fit(std::vector<double>(20, 0.0)).ok());
  std::vector<double> window(4, 0.0);
  for (int step = 0; step < 5; ++step) {
    ASSERT_TRUE(ens.Observe(window, 0.5).ok());
    auto w = ens.CurrentWeights();
    double sum = 0;
    for (double wi : w) {
      EXPECT_GE(wi, -1e-12);
      sum += wi;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // The best member (prediction 0, error 0.25) carries the largest weight.
  auto w = ens.CurrentWeights();
  for (size_t i = 1; i < n; ++i) EXPECT_GE(w[0], w[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnsembleSizeProperty,
                         ::testing::Values(2, 3, 4, 7));

// ---------- MLP learning is monotone in data quality ----------

class MlpNoiseProperty : public ::testing::TestWithParam<double> {};

TEST_P(MlpNoiseProperty, FitsAtLeastTheSignal) {
  // For any noise level, the trained MLP's test MSE stays within a small
  // multiple of the irreducible noise variance on a pure sine target.
  double noise = GetParam();
  Rng rng(47);
  std::vector<double> v(800);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 10 + 5 * std::sin(2 * M_PI * static_cast<double>(i) / 32.0) +
           rng.Gaussian(0, noise);
  }
  models::ForecasterOptions opts;
  opts.window = 16;
  opts.horizon = 1;
  opts.epochs = 20;
  models::MlpForecaster mlp(opts);
  std::vector<double> train(v.begin(), v.begin() + 600);
  ASSERT_TRUE(mlp.Fit(train).ok());
  auto eval = models::EvaluateForecaster(mlp, v, 600, 16, 1);
  ASSERT_TRUE(eval.ok());
  double mse = 0;
  for (size_t i = 0; i < eval->predicted.size(); ++i) {
    double e = eval->predicted[i] - eval->actual[i];
    mse += e * e;
  }
  mse /= static_cast<double>(eval->predicted.size());
  EXPECT_LT(mse, noise * noise * 3.0 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, MlpNoiseProperty,
                         ::testing::Values(0.0, 0.2, 1.0, 2.0));

}  // namespace
}  // namespace dbaugur

// Fault-tolerance tests for the serving layer: deterministic fault-injection
// schedules, retrain backoff, input quarantine + winsorization, per-cluster
// degraded mode with last-good / kernel-baseline fallbacks, and crash-safe
// on-disk checkpoints (torn writes, bit flips, truncation → last-good
// recovery). The final chaos test reads DBAUGUR_FAULT_SPEC and is what the
// check.sh fault pass drives under ASan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/binio.h"
#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "serve/ingestor.h"
#include "serve/service.h"
#include "serve/sharded_service.h"
#include "serve/snapshot.h"

namespace dbaugur::serve {
namespace {

constexpr int64_t kInterval = 600;

// Every test starts and ends with a clean fault registry, so a failed test
// cannot leak schedules into its neighbors (or inherit the env spec the
// check.sh chaos pass installs process-wide).
class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }
};

using FaultInjectionTest = ServeFaultTest;
using BackoffTest = ServeFaultTest;
using QuarantineTest = ServeFaultTest;
using DegradedModeTest = ServeFaultTest;
using CheckpointFaultTest = ServeFaultTest;
using ServeFaultChaosTest = ServeFaultTest;

ServeOptions FaultOptions() {
  ServeOptions o;
  // Tight clustering: each of the (deliberately dissimilar) templates forms
  // its own cluster, so per-cluster degradation is observable at every rank.
  o.pipeline.clustering.radius = 1.0;
  o.pipeline.clustering.min_size = 1;
  o.pipeline.clustering.dtw.window = 4;
  o.pipeline.top_k = 3;
  o.pipeline.forecaster.window = 6;
  o.pipeline.forecaster.horizon = 1;
  o.pipeline.forecaster.epochs = 2;
  o.pipeline.forecaster.batch_size = 8;
  o.bin_interval_seconds = kInterval;
  o.queue_capacity = 8192;
  o.retrain_interval_seconds = 0.005;
  o.max_lateness_seconds = 2 * kInterval;
  return o;
}

// Offers `bins` bins for `templates` templates with per-template scales far
// enough apart that each template clusters alone (distinct, ordered volumes).
void OfferScaledBins(ForecastService* svc, uint32_t templates,
                     int64_t first_bin, int64_t bins) {
  for (int64_t b = first_bin; b < first_bin + bins; ++b) {
    for (uint32_t t = 0; t < templates; ++t) {
      double scale = 50.0 * static_cast<double>(templates - t);
      TraceEvent e;
      e.template_id = t;
      e.timestamp = b * kInterval + 30;
      e.count = scale + 5.0 * std::sin(static_cast<double>(b) * 0.4 + t);
      ASSERT_TRUE(svc->Offer(e));
    }
  }
}

// --------------------------------------------------------------------------
// Fault-injection framework semantics.

TEST_F(FaultInjectionTest, InactiveByDefaultAndAfterReset) {
  EXPECT_FALSE(fault::Active());
  EXPECT_FALSE(DBAUGUR_FAULT_POINT("test.site"));
  ASSERT_TRUE(fault::Configure("test.site=n:1").ok());
  EXPECT_TRUE(fault::Active());
  fault::Reset();
  EXPECT_FALSE(fault::Active());
  EXPECT_FALSE(DBAUGUR_FAULT_POINT("test.site"));
}

TEST_F(FaultInjectionTest, FirstNScheduleFiresExactlyNTimes) {
  ASSERT_TRUE(fault::Configure("test.site=n:3").ok());
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (DBAUGUR_FAULT_POINT("test.site")) ++fires;
  }
  EXPECT_EQ(fires, 3);
  auto st = fault::Stats("test.site");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->hits, 10u);
  EXPECT_EQ(st->fires, 3u);
}

TEST_F(FaultInjectionTest, AtIndicesScheduleFiresOnExactHits) {
  ASSERT_TRUE(fault::Configure("test.site=at:0,4,5").ok());
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    if (DBAUGUR_FAULT_POINT("test.site")) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 4, 5}));
}

TEST_F(FaultInjectionTest, ProbabilisticScheduleIsSeedDeterministic) {
  auto run = [] {
    std::vector<bool> verdicts;
    for (int i = 0; i < 64; ++i) {
      verdicts.push_back(DBAUGUR_FAULT_POINT("test.site"));
    }
    return verdicts;
  };
  ASSERT_TRUE(fault::Configure("test.site=p:0.5:99").ok());
  auto first = run();
  ASSERT_TRUE(fault::Configure("test.site=p:0.5:99").ok());
  auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::count(first.begin(), first.end(), true), 0);
  EXPECT_GT(std::count(first.begin(), first.end(), false), 0);
  // A different seed yields a different (still deterministic) sequence.
  ASSERT_TRUE(fault::Configure("test.site=p:0.5:100").ok());
  EXPECT_NE(run(), first);
}

TEST_F(FaultInjectionTest, ParseErrorKeepsPreviousConfiguration) {
  ASSERT_TRUE(fault::Configure("test.site=n:2").ok());
  EXPECT_FALSE(fault::Configure("test.site=bogus:1").ok());
  EXPECT_FALSE(fault::Configure("nonsense").ok());
  EXPECT_FALSE(fault::Configure("test.site=p:2.0").ok());  // p out of range
  // The n:2 schedule survived all three rejected specs.
  EXPECT_TRUE(DBAUGUR_FAULT_POINT("test.site"));
  EXPECT_TRUE(DBAUGUR_FAULT_POINT("test.site"));
  EXPECT_FALSE(DBAUGUR_FAULT_POINT("test.site"));
}

TEST_F(FaultInjectionTest, MultiSiteSpecAndUnknownSiteStats) {
  ASSERT_TRUE(fault::Configure("a.b=n:1;c.d=at:1").ok());
  EXPECT_TRUE(DBAUGUR_FAULT_POINT("a.b"));
  EXPECT_FALSE(DBAUGUR_FAULT_POINT("c.d"));
  EXPECT_TRUE(DBAUGUR_FAULT_POINT("c.d"));
  EXPECT_EQ(fault::Stats("never.hit").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fault::AllStats().size(), 2u);
}

// --------------------------------------------------------------------------
// Retrain failure handling: backoff schedule, last_error, Health().

// Independent reimplementation of the backoff formula (SplitMix64 finalizer,
// capped ldexp doubling, ±10% jitter) so the test pins the *schedule*, not
// merely self-consistency.
double ExpectedBackoff(const ServeOptions& o, uint64_t consecutive,
                       uint64_t total) {
  if (consecutive == 0) return o.retrain_interval_seconds;
  int exp = static_cast<int>(std::min<uint64_t>(consecutive - 1, 60));
  double delay =
      std::min(std::ldexp(o.retrain_interval_seconds, exp), o.max_backoff_seconds);
  uint64_t z = o.seed ^ total;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  double unit = static_cast<double>(z >> 11) * 0x1.0p-53;
  return delay * (0.9 + 0.2 * unit);
}

TEST_F(BackoffTest, ScheduleIsExactCappedAndJittered) {
  ServeOptions o = FaultOptions();
  o.retrain_interval_seconds = 1.0;
  o.max_backoff_seconds = 60.0;
  o.seed = 1234;
  // Healthy: plain interval, no jitter.
  EXPECT_EQ(ForecastService::ComputeBackoffSeconds(o, 0, 17), 1.0);
  double prev_base = 0.0;
  for (uint64_t f = 1; f <= 12; ++f) {
    double got = ForecastService::ComputeBackoffSeconds(o, f, f);
    EXPECT_EQ(got, ExpectedBackoff(o, f, f)) << "failure " << f;
    double base = std::min(std::ldexp(1.0, static_cast<int>(f - 1)), 60.0);
    // Jitter stays within ±10% of the capped exponential base...
    EXPECT_GE(got, 0.9 * base - 1e-12);
    EXPECT_LE(got, 1.1 * base + 1e-12);
    // ...and the base itself never shrinks as failures accumulate.
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
  // Deep failure streaks saturate at the cap (±10%).
  double deep = ForecastService::ComputeBackoffSeconds(o, 40, 40);
  EXPECT_GE(deep, 0.9 * 60.0 - 1e-12);
  EXPECT_LE(deep, 1.1 * 60.0 + 1e-12);
  // The jitter is keyed on total_failures: the same streak length at a
  // different point in history waits a different (deterministic) time.
  EXPECT_NE(ForecastService::ComputeBackoffSeconds(o, 3, 3),
            ForecastService::ComputeBackoffSeconds(o, 3, 7));
}

TEST_F(BackoffTest, FailuresAreRecordedOnceAndClearedOnSuccess) {
  ForecastService svc(FaultOptions());
  OfferScaledBins(&svc, 2, 0, 12);
  ASSERT_TRUE(fault::Configure("serve.retrain.build=n:3").ok());

  for (int i = 1; i <= 3; ++i) {
    Status st = svc.RetrainOnce();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("injected"), std::string::npos);
    ServeStats s = svc.stats();
    EXPECT_EQ(s.retrains_failed, static_cast<uint64_t>(i));
    EXPECT_EQ(s.consecutive_failures, static_cast<uint64_t>(i));
    EXPECT_NE(s.last_error.find("injected"), std::string::npos);
    EXPECT_EQ(s.last_error_generation, 0u);  // failed before first publish
    EXPECT_EQ(s.last_error_cycles, 0u);
  }
  ServiceHealth h = svc.Health();
  EXPECT_EQ(h.state, ServiceHealth::State::kBackoff);
  EXPECT_EQ(h.consecutive_failures, 3u);
  EXPECT_EQ(h.backoff_seconds,
            ForecastService::ComputeBackoffSeconds(svc.options(), 3, 3));

  // The schedule is exhausted: the next cycle trains, clears the streak, and
  // keeps the failure history (retrains_failed, last_error) for forensics.
  ASSERT_TRUE(svc.RetrainOnce().ok());
  ServeStats s = svc.stats();
  EXPECT_EQ(s.retrains_completed, 1u);
  EXPECT_EQ(s.retrains_failed, 3u);
  EXPECT_EQ(s.consecutive_failures, 0u);
  EXPECT_NE(s.last_error.find("injected"), std::string::npos);
  h = svc.Health();
  EXPECT_EQ(h.state, ServiceHealth::State::kHealthy);
  EXPECT_EQ(h.generation, 1u);
  EXPECT_EQ(h.backoff_seconds, svc.options().retrain_interval_seconds);
  ASSERT_EQ(h.clusters.size(), svc.snapshot()->cluster_count());
  for (const auto& c : h.clusters) EXPECT_FALSE(c.degraded);
}

TEST_F(BackoffTest, UntrainedHealthBeforeAnyData) {
  ForecastService svc(FaultOptions());
  ServiceHealth h = svc.Health();
  EXPECT_EQ(h.state, ServiceHealth::State::kUntrained);
  EXPECT_EQ(h.generation, 0u);
  EXPECT_TRUE(h.last_error.empty());
  EXPECT_TRUE(h.clusters.empty());
}

// --------------------------------------------------------------------------
// Input quarantine + winsorization.

TEST_F(QuarantineTest, GarbageBurstIsQuarantinedAndForecastsUnchanged) {
  ServeOptions opts = FaultOptions();
  ForecastService clean(opts);
  ForecastService dirty(opts);
  OfferScaledBins(&clean, 2, 0, 14);
  OfferScaledBins(&dirty, 2, 0, 14);

  // Burst of garbage at the dirty service only: NaN / inf / negative counts
  // and a timestamp far staler than max_lateness. Every row must bounce.
  const ts::Timestamp now = 13 * kInterval;
  EXPECT_FALSE(dirty.Offer({0, now, std::nan("")}));
  EXPECT_FALSE(dirty.Offer({0, now, std::numeric_limits<double>::infinity()}));
  EXPECT_FALSE(dirty.Offer({1, now, -std::numeric_limits<double>::infinity()}));
  EXPECT_FALSE(dirty.Offer({1, now, -3.0}));
  EXPECT_FALSE(dirty.Offer({0, now - 10 * kInterval, 5.0}));  // stale
  // Fault-injected corruption: the count rots to NaN inside Offer and must be
  // caught by the same quarantine before reaching the binner.
  ASSERT_TRUE(fault::Configure("serve.ingest.corrupt=n:2").ok());
  EXPECT_FALSE(dirty.Offer({0, now, 7.0}));
  EXPECT_FALSE(dirty.Offer({1, now, 7.0}));
  fault::Reset();

  ServeStats ds = dirty.stats();
  EXPECT_EQ(ds.events_quarantined, 7u);
  EXPECT_EQ(ds.events_dropped, 7u);

  ASSERT_TRUE(clean.RetrainOnce().ok());
  ASSERT_TRUE(dirty.RetrainOnce().ok());
  auto a = clean.snapshot();
  auto b = dirty.snapshot();
  ASSERT_TRUE(a->trained());
  ASSERT_EQ(a->cluster_count(), b->cluster_count());
  for (size_t rank = 0; rank < a->cluster_count(); ++rank) {
    auto fa = a->ForecastCluster(rank);
    auto fb = b->ForecastCluster(rank);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_EQ(*fa, *fb);  // bit-identical: no garbage reached training
  }
  EXPECT_EQ(dirty.stats().values_winsorized, 0u);
}

TEST_F(QuarantineTest, FiniteOutlierIsWinsorizedBeforeTraining) {
  ServeOptions opts = FaultOptions();
  ForecastService svc(opts);
  OfferScaledBins(&svc, 2, 0, 14);
  // A finite positive spike passes the ingest quarantine (it could be a real
  // burst; it is recent enough to clear the lateness bound) but is ~1e10× the
  // series scale; the median/MAD clamp must pull it in before it reaches the
  // ensemble fit.
  ASSERT_TRUE(svc.Offer({0, 13 * kInterval + 60, 1e12}));
  ASSERT_TRUE(svc.RetrainOnce().ok());
  ServeStats s = svc.stats();
  EXPECT_EQ(s.events_quarantined, 0u);
  EXPECT_GE(s.values_winsorized, 1u);
  auto snap = svc.snapshot();
  ASSERT_TRUE(snap->trained());
  EXPECT_EQ(snap->degraded_count(), 0u);
  for (size_t rank = 0; rank < snap->cluster_count(); ++rank) {
    auto f = snap->ForecastCluster(rank);
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE(std::isfinite(*f));
    EXPECT_LT(std::abs(*f), 1e6);  // nowhere near the 1e12 spike
  }
}

// --------------------------------------------------------------------------
// Per-cluster degraded mode.

TEST_F(DegradedModeTest, DivergedClusterFallsBackToKernelBaselineFirstTrain) {
  ServeOptions opts = FaultOptions();
  ForecastService control(opts);
  ForecastService faulted(opts);
  OfferScaledBins(&control, 3, 0, 14);
  OfferScaledBins(&faulted, 3, 0, 14);

  ASSERT_TRUE(control.RetrainOnce().ok());
  // Diverge exactly the first cluster examined by the snapshot build.
  ASSERT_TRUE(fault::Configure("serve.retrain.diverge=at:0").ok());
  ASSERT_TRUE(faulted.RetrainOnce().ok());
  fault::Reset();

  auto c = control.snapshot();
  auto f = faulted.snapshot();
  ASSERT_TRUE(c->trained() && f->trained());
  ASSERT_EQ(c->cluster_count(), f->cluster_count());
  ASSERT_GE(f->cluster_count(), 2u);
  EXPECT_EQ(f->degraded_count(), 1u);

  // Rank 0: degraded, on the kernel baseline (no last-good on first train),
  // with a finite forecast inside the representative's observed range
  // neighborhood.
  const SnapshotCluster& d = f->clusters[0];
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.model_kind, SnapshotCluster::ModelKind::kKernelBaseline);
  EXPECT_NE(d.degraded_reason.find("injected"), std::string::npos);
  EXPECT_NE(d.degraded_reason.find("kernel"), std::string::npos);
  EXPECT_TRUE(std::isfinite(d.next_value));

  // Every other cluster is bit-identical to the control run.
  for (size_t rank = 1; rank < f->cluster_count(); ++rank) {
    EXPECT_FALSE(f->clusters[rank].degraded);
    EXPECT_EQ(f->clusters[rank].model_kind,
              SnapshotCluster::ModelKind::kEnsemble);
    auto fc = c->ForecastCluster(rank);
    auto ff = f->ForecastCluster(rank);
    ASSERT_TRUE(fc.ok() && ff.ok());
    EXPECT_EQ(*fc, *ff);
  }

  ServiceHealth h = faulted.Health();
  EXPECT_EQ(h.state, ServiceHealth::State::kDegraded);
  ASSERT_EQ(h.clusters.size(), f->cluster_count());
  EXPECT_TRUE(h.clusters[0].degraded);
  EXPECT_FALSE(h.clusters[1].degraded);

  // A degraded snapshot round-trips: the kernel-baseline model kind is
  // persisted and the restored service reproduces every forecast bit-for-bit.
  auto blob = faulted.Save();
  ASSERT_TRUE(blob.ok());
  ForecastService restored(opts);
  ASSERT_TRUE(restored.Load(*blob).ok());
  auto r = restored.snapshot();
  ASSERT_EQ(r->cluster_count(), f->cluster_count());
  EXPECT_EQ(r->degraded_count(), 1u);
  EXPECT_EQ(r->clusters[0].model_kind,
            SnapshotCluster::ModelKind::kKernelBaseline);
  EXPECT_EQ(r->clusters[0].degraded_reason, d.degraded_reason);
  for (size_t rank = 0; rank < r->cluster_count(); ++rank) {
    auto fr = r->ForecastCluster(rank);
    auto ff = f->ForecastCluster(rank);
    ASSERT_TRUE(fr.ok() && ff.ok());
    EXPECT_EQ(*fr, *ff);
  }
}

TEST_F(DegradedModeTest, DivergedClusterServesLastGoodModelAfterFirstTrain) {
  ServeOptions opts = FaultOptions();
  ForecastService svc(opts);
  OfferScaledBins(&svc, 2, 0, 14);
  ASSERT_TRUE(svc.RetrainOnce().ok());  // generation 1, all healthy
  ASSERT_EQ(svc.snapshot()->degraded_count(), 0u);

  OfferScaledBins(&svc, 2, 14, 4);
  ASSERT_TRUE(fault::Configure("serve.retrain.diverge=at:0").ok());
  ASSERT_TRUE(svc.RetrainOnce().ok());  // generation 2
  fault::Reset();

  auto snap = svc.snapshot();
  EXPECT_EQ(snap->generation, 2u);
  ASSERT_TRUE(snap->trained());
  EXPECT_EQ(snap->degraded_count(), 1u);
  const SnapshotCluster& d = snap->clusters[0];
  EXPECT_TRUE(d.degraded);
  // With a healthy generation 1 on the shelf, the fallback clones that model
  // rather than dropping all the way to the kernel baseline.
  EXPECT_EQ(d.model_kind, SnapshotCluster::ModelKind::kEnsemble);
  EXPECT_NE(d.degraded_reason.find("last-good generation 1"),
            std::string::npos);
  EXPECT_TRUE(std::isfinite(d.next_value));

  // Recovery: the next clean cycle re-fits everything and clears the flag.
  OfferScaledBins(&svc, 2, 18, 2);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  EXPECT_EQ(svc.snapshot()->degraded_count(), 0u);
  EXPECT_EQ(svc.Health().state, ServiceHealth::State::kHealthy);
}

// --------------------------------------------------------------------------
// Crash-safe on-disk checkpoints.

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST_F(CheckpointFaultTest, CorruptPrimarySweepRecoversLastGood) {
  ServeOptions opts = FaultOptions();
  ForecastService svc(opts);
  const std::string path = ::testing::TempDir() + "dbaugur_ckpt_sweep.bin";
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());

  OfferScaledBins(&svc, 2, 0, 14);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  ASSERT_TRUE(svc.SaveToFile(path).ok());  // generation 1 → primary
  OfferScaledBins(&svc, 2, 14, 4);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  ASSERT_TRUE(svc.SaveToFile(path).ok());  // generation 2 → primary, 1 → .bak

  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  ASSERT_GT(pristine.size(), 32u);

  // Sanity: the intact primary restores generation 2 without recovery.
  {
    ForecastService fresh(opts);
    bool recovered = true;
    ASSERT_TRUE(fresh.LoadFromFile(path, &recovered).ok());
    EXPECT_FALSE(recovered);
    EXPECT_EQ(fresh.generation(), 2u);
  }

  ForecastService target(opts);
  auto expect_recovers_gen1 = [&](const std::string& what) {
    bool recovered = false;
    Status st = target.LoadFromFile(path, &recovered);
    ASSERT_TRUE(st.ok()) << what << ": " << st.message();
    EXPECT_TRUE(recovered) << what;
    EXPECT_EQ(target.generation(), 1u) << what;
  };

  // Truncations: empty file, mid-header, mid-payload, missing footer byte.
  for (size_t len : {size_t{0}, size_t{7}, size_t{15}, pristine.size() / 2,
                     pristine.size() - 1}) {
    std::vector<uint8_t> cut(pristine.begin(),
                             pristine.begin() + static_cast<long>(len));
    WriteFileBytes(path, cut);
    expect_recovers_gen1("truncate to " + std::to_string(len));
  }

  // Bit flips: every byte of the 16-byte header and 4-byte CRC footer, plus a
  // stride sweep across the CRC-covered payload. Every single flip must be
  // caught by the frame checks and recover to the .bak generation.
  std::vector<size_t> positions;
  for (size_t i = 0; i < 16; ++i) positions.push_back(i);
  for (size_t i = pristine.size() - 4; i < pristine.size(); ++i) {
    positions.push_back(i);
  }
  size_t stride = std::max<size_t>(1, (pristine.size() - 20) / 64);
  for (size_t i = 16; i + 4 < pristine.size(); i += stride) {
    positions.push_back(i);
  }
  for (size_t pos : positions) {
    std::vector<uint8_t> bad = pristine;
    bad[pos] ^= 0x40;
    WriteFileBytes(path, bad);
    expect_recovers_gen1("flip byte " + std::to_string(pos));
  }

  // Both copies destroyed → a descriptive error, and the target keeps
  // serving whatever it had (the last recovered generation).
  WriteFileBytes(path, std::vector<uint8_t>{1, 2, 3});
  WriteFileBytes(path + ".bak", std::vector<uint8_t>{4, 5, 6});
  bool recovered = false;
  EXPECT_FALSE(target.LoadFromFile(path, &recovered).ok());
  EXPECT_EQ(target.generation(), 1u);

  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST_F(CheckpointFaultTest, InjectedSaveFaultsNeverDamageThePreviousFile) {
  ServeOptions opts = FaultOptions();
  ForecastService svc(opts);
  const std::string path = ::testing::TempDir() + "dbaugur_ckpt_faults.bin";
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());

  OfferScaledBins(&svc, 2, 0, 14);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  ASSERT_TRUE(svc.SaveToFile(path).ok());  // good generation-1 checkpoint
  const std::vector<uint8_t> good = ReadFileBytes(path);

  OfferScaledBins(&svc, 2, 14, 4);
  ASSERT_TRUE(svc.RetrainOnce().ok());  // generation 2, not yet on disk

  // Torn write / failed fsync abort before any rename: the installed
  // generation-1 primary is untouched, byte for byte.
  for (const char* site : {"binio.save.write", "binio.save.sync"}) {
    ASSERT_TRUE(fault::Configure(std::string(site) + "=n:1").ok());
    EXPECT_FALSE(svc.SaveToFile(path).ok()) << site;
    fault::Reset();
    EXPECT_EQ(ReadFileBytes(path), good) << site;
    ForecastService fresh(opts);
    bool recovered = true;
    ASSERT_TRUE(fresh.LoadFromFile(path, &recovered).ok()) << site;
    EXPECT_FALSE(recovered) << site;
    EXPECT_EQ(fresh.generation(), 1u) << site;
  }

  // A failed final rename is the crash window between the two renames: the
  // primary has already moved to `.bak`, and recovery serves it from there.
  ASSERT_TRUE(fault::Configure("binio.save.rename=n:1").ok());
  EXPECT_FALSE(svc.SaveToFile(path).ok());
  fault::Reset();
  {
    ForecastService fresh(opts);
    bool recovered = false;
    ASSERT_TRUE(fresh.LoadFromFile(path, &recovered).ok());
    EXPECT_TRUE(recovered);
    EXPECT_EQ(fresh.generation(), 1u);
    EXPECT_EQ(ReadFileBytes(path + ".bak"), good);
  }

  // With faults cleared the pending generation lands, atomically.
  ASSERT_TRUE(svc.SaveToFile(path).ok());
  ForecastService fresh(opts);
  ASSERT_TRUE(fresh.LoadFromFile(path, nullptr).ok());
  EXPECT_EQ(fresh.generation(), 2u);

  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(CheckpointFaultTest, LoadFromMissingFileFails) {
  ForecastService svc(FaultOptions());
  Status st =
      svc.LoadFromFile(::testing::TempDir() + "dbaugur_no_such_ckpt.bin");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(svc.generation(), 0u);
}

// --------------------------------------------------------------------------
// Checkpoint vs cancellation races: saves issued while retrains hang, crawl,
// or unwind from a watchdog cancellation must always produce complete,
// loadable, all-or-nothing checkpoints.

TEST_F(CheckpointFaultTest, SavesDuringCancelledRetrainCyclesStayLoadable) {
  // Three storms: every retrain hangs until the watchdog fires; every
  // retrain crawls through the slow fault (cancelled at the 20ms deadline
  // long before the ~200ms stall ends); a seeded mix of both.
  const char* kStorms[] = {
      "serve.retrain.hang=n:1000",
      "serve.retrain.slow=n:1000",
      "serve.retrain.hang=p:0.5:11;serve.retrain.slow=p:0.5:12",
  };
  for (const char* storm : kStorms) {
    fault::Reset();
    ShardedServeOptions so;
    so.shard = FaultOptions();
    so.shard_count = 2;
    so.retrain_workers = 2;
    so.retrain_deadline_seconds = 0.02;
    ShardedForecastService svc(so);
    for (int64_t b = 0; b < 14; ++b) {
      for (uint32_t t = 0; t < 4; ++t) {
        TraceEvent e;
        e.template_id = t;
        e.timestamp = b * kInterval + 30;
        e.count = 50.0 * static_cast<double>(t + 1);
        ASSERT_TRUE(svc.Offer(e));
      }
    }
    (void)svc.RetrainCycle();  // clean last-good state before the storm
    ASSERT_TRUE(fault::Configure(storm).ok()) << storm;

    std::atomic<bool> done{false};
    std::thread cycler([&] {
      for (int i = 0; i < 3; ++i) (void)svc.RetrainCycle();
      done.store(true, std::memory_order_release);
    });
    // Saves race the storm: each blocks at most ~one watchdog deadline
    // behind an in-flight cycle, then must write a checkpoint that loads
    // all-or-nothing into a fresh service.
    const std::string base = ::testing::TempDir() + "dbaugur_cancel_ckpt";
    int saves = 0;
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(svc.SaveToFiles(base).ok()) << storm;
      ++saves;
      ShardedForecastService restored(so);
      ASSERT_TRUE(restored.LoadFromFiles(base).ok()) << storm;
      for (size_t s = 0; s < so.shard_count; ++s) {
        ASSERT_NE(restored.snapshot(s), nullptr) << storm;
      }
    }
    cycler.join();
    EXPECT_GE(saves, 1) << storm;
  }
}

TEST_F(CheckpointFaultTest, ShardLevelSaveRacesASlowRetrainAndLoads) {
  // Below the scheduler: a direct shard retrain crawling through the slow
  // fault while SaveToFiles runs concurrently. The save serializes behind
  // the shard's retrain lock mid-stall and must still emit a loadable
  // checkpoint whether it lands before or after the publish.
  ShardedServeOptions so;
  so.shard = FaultOptions();
  so.shard_count = 2;
  ShardedForecastService svc(so);
  for (int64_t b = 0; b < 14; ++b) {
    for (uint32_t t = 0; t < 4; ++t) {
      TraceEvent e;
      e.template_id = t;
      e.timestamp = b * kInterval + 30;
      e.count = 50.0 * static_cast<double>(t + 1);
      ASSERT_TRUE(svc.Offer(e));
    }
  }
  ASSERT_TRUE(fault::Configure("serve.retrain.slow=n:1").ok());
  CancelToken token;  // never cancelled: the slow retrain completes
  std::thread retrainer(
      [&] { (void)svc.shard(0).RetrainOnce(nullptr, &token); });
  const std::string base = ::testing::TempDir() + "dbaugur_shard_race_ckpt";
  ASSERT_TRUE(svc.SaveToFiles(base).ok());
  retrainer.join();
  EXPECT_FALSE(token.cancelled());
  ShardedForecastService restored(so);
  ASSERT_TRUE(restored.LoadFromFiles(base).ok());
  for (size_t s = 0; s < so.shard_count; ++s) {
    ASSERT_NE(restored.snapshot(s), nullptr);
  }
}

// --------------------------------------------------------------------------
// Env-driven chaos storm (the check.sh fault pass sets DBAUGUR_FAULT_SPEC).

TEST_F(ServeFaultChaosTest, SurvivesEnvConfiguredFaultStorm) {
  const char* spec = std::getenv("DBAUGUR_FAULT_SPEC");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "set DBAUGUR_FAULT_SPEC to run the chaos storm";
  }
  ASSERT_TRUE(fault::Configure(spec).ok()) << "bad DBAUGUR_FAULT_SPEC";

  ServeOptions opts = FaultOptions();
  ForecastService svc(opts);
  // Offers may bounce under an ingest-corruption storm — that is the point —
  // so unlike OfferScaledBins this helper tolerates rejection.
  auto offer_bins = [&svc](int64_t first_bin, int64_t bins) {
    for (int64_t b = first_bin; b < first_bin + bins; ++b) {
      for (uint32_t t = 0; t < 2; ++t) {
        double scale = 50.0 * static_cast<double>(2 - t);
        (void)svc.Offer(
            {t, b * kInterval + 30,
             scale + 5.0 * std::sin(static_cast<double>(b) * 0.4 + t)});
      }
    }
  };
  offer_bins(0, 14);
  // Drive cycles synchronously (1-core friendly) while the storm rages:
  // failures must be recorded, never published, and never fatal.
  int failures = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    offer_bins(14 + 2 * cycle, 2);
    if (!svc.RetrainOnce().ok()) ++failures;
    auto snap = svc.snapshot();
    ASSERT_NE(snap, nullptr);
    if (snap->trained()) {
      auto f = snap->ForecastCluster(0);
      ASSERT_TRUE(f.ok());
      EXPECT_TRUE(std::isfinite(*f));
    }
  }
  // Once the storm clears, the service recovers to a healthy publish.
  fault::Reset();
  ASSERT_TRUE(svc.RetrainOnce().ok());
  EXPECT_GE(svc.generation(), 1u);
  ServeStats s = svc.stats();
  EXPECT_EQ(s.retrains_failed, static_cast<uint64_t>(failures));
  EXPECT_EQ(s.consecutive_failures, 0u);
}

}  // namespace
}  // namespace dbaugur::serve

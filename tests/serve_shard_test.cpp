// Sharded serving tests: hash routing invariants, deterministic priority
// scheduling with a starvation bound, shard_count=1 bit-identity against
// ForecastService, multi-shard per-cluster forecast identity against a
// single-shard reference, per-shard seed-stream positions across save/load,
// re-hash migration key-set equality, and a concurrent producers + readers +
// scheduler smoke the sanitizer presets (ASan/TSan) exercise.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/hashing.h"
#include "serve/retrain_scheduler.h"
#include "serve/service.h"
#include "serve/sharded_service.h"
#include "serve/snapshot.h"

namespace dbaugur::serve {
namespace {

constexpr int64_t kInterval = 600;

ServeOptions FastOptions() {
  ServeOptions o;
  o.pipeline.clustering.radius = 6.0;
  o.pipeline.clustering.min_size = 2;
  o.pipeline.clustering.dtw.window = 4;
  o.pipeline.top_k = 3;
  o.pipeline.forecaster.window = 6;
  o.pipeline.forecaster.horizon = 1;
  o.pipeline.forecaster.epochs = 2;  // serving smoke, not accuracy
  o.pipeline.forecaster.batch_size = 8;
  o.bin_interval_seconds = kInterval;
  o.queue_capacity = 1 << 15;
  o.retrain_interval_seconds = 0.005;
  return o;
}

TraceEvent EventAt(uint32_t template_id, int64_t bin, double count) {
  TraceEvent e;
  e.template_id = template_id;
  e.timestamp = bin * kInterval + 30;
  e.count = count;
  return e;
}

/// First `per_shard` template ids routing to each of `shard_count` shards.
std::vector<std::vector<uint32_t>> TemplatesByShard(size_t shard_count,
                                                    size_t per_shard) {
  std::vector<std::vector<uint32_t>> groups(shard_count);
  for (uint32_t id = 0; id < 4096; ++id) {
    auto& g = groups[ShardOfKey(id, shard_count)];
    if (g.size() < per_shard) g.push_back(id);
    bool done = true;
    for (const auto& grp : groups) done = done && grp.size() == per_shard;
    if (done) break;
  }
  return groups;
}

/// member-name-set -> precomputed cluster forecast, for cross-run matching.
std::map<std::set<std::string>, double> ClusterForecastsByMembers(
    const ServiceSnapshot& snap) {
  std::map<std::set<std::string>, double> out;
  for (size_t rank = 0; rank < snap.clusters.size(); ++rank) {
    std::set<std::string> members;
    for (size_t i = 0; i < snap.trace_names.size(); ++i) {
      if (snap.trace_cluster[i] == snap.clusters[rank].cluster_id) {
        members.insert(snap.trace_names[i]);
      }
    }
    out[members] = snap.clusters[rank].next_value;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Routing invariants.

TEST(ShardRoutingTest, SameKeyAlwaysSameShard) {
  for (size_t count : {1u, 4u, 16u, 64u}) {
    for (uint32_t key = 0; key < 2000; ++key) {
      size_t first = ShardOfKey(key, count);
      EXPECT_LT(first, count);
      EXPECT_EQ(ShardOfKey(key, count), first);
    }
  }
}

TEST(ShardRoutingTest, OfferRoutesToTheShardShardOfReports) {
  ShardedServeOptions o;
  o.shard = FastOptions();
  o.shard_count = 4;
  ShardedForecastService svc(o);
  for (uint32_t id = 0; id < 64; ++id) {
    ASSERT_TRUE(svc.Offer(EventAt(id, 0, 1.0)));
    size_t owner = svc.ShardOf(id);
    EXPECT_EQ(svc.shard(owner).queue_depth() > 0, true);
  }
  uint64_t accepted = 0;
  for (size_t s = 0; s < svc.shard_count(); ++s) {
    accepted += svc.shard(s).events_accepted();
  }
  EXPECT_EQ(accepted, 64u);
}

TEST(ShardRoutingTest, RoutingSpreadsKeysAcrossShards) {
  // Not a uniformity proof, just a guard against a degenerate hash: 4096
  // sequential ids must hit every one of 16 shards.
  std::set<size_t> hit;
  for (uint32_t id = 0; id < 4096; ++id) hit.insert(ShardOfKey(id, 16));
  EXPECT_EQ(hit.size(), 16u);
}

// ---------------------------------------------------------------------------
// Scheduler policy (pure function, pinned).

TEST(RetrainSchedulerTest, OrdersByPendingTimesStalenessWithIdTieBreak) {
  std::vector<ShardSignal> s = {
      {0, 10, 0, 0},  // priority 10
      {1, 5, 3, 0},   // priority 20
      {2, 0, 9, 0},   // no pending: never scheduled (work-conserving)
      {3, 10, 1, 0},  // priority 20 — ties toward lower id, after shard 1
  };
  RetrainSchedulerOptions o;
  o.starvation_cycles = 100;  // no forced promotion in this test
  EXPECT_EQ(ScheduleRetrains(s, o), (std::vector<size_t>{1, 3, 0}));
  o.budget = 2;
  EXPECT_EQ(ScheduleRetrains(s, o), (std::vector<size_t>{1, 3}));
}

TEST(RetrainSchedulerTest, StarvedShardsPromoteAheadOfHotOnes) {
  std::vector<ShardSignal> s = {
      {0, 1000000, 0, 0},  // hottest by far
      {1, 1, 5, 0},        // starved (waited >= 4)
      {2, 1, 7, 0},        // starved longer — first
  };
  RetrainSchedulerOptions o;
  o.starvation_cycles = 4;
  EXPECT_EQ(ScheduleRetrains(s, o), (std::vector<size_t>{2, 1, 0}));
}

TEST(RetrainSchedulerTest, FailureBackoffGatesEligibilityInCycles) {
  EXPECT_EQ(BackoffCycles(0), 0u);
  EXPECT_EQ(BackoffCycles(1), 1u);
  EXPECT_EQ(BackoffCycles(3), 4u);
  EXPECT_EQ(BackoffCycles(64), uint64_t{1} << 16);  // capped

  RetrainSchedulerOptions o;
  // 2 failures -> backoff 2 cycles: ineligible at waited 1, eligible at 2.
  std::vector<ShardSignal> waiting = {{0, 50, 1, 2}};
  EXPECT_TRUE(ScheduleRetrains(waiting, o).empty());
  std::vector<ShardSignal> ready = {{0, 50, 2, 2}};
  EXPECT_EQ(ScheduleRetrains(ready, o), (std::vector<size_t>{0}));
  // Starvation promotion never overrides the backoff gate.
  std::vector<ShardSignal> starved_but_failing = {{0, 50, 3, 4}};
  EXPECT_TRUE(ScheduleRetrains(starved_but_failing, o).empty());
}

TEST(RetrainSchedulerTest, StarvationBoundHoldsUnderConstantPressure) {
  // 6 shards, all always pending, budget 2, starvation threshold 3: every
  // shard must be scheduled at least once every K = 3 + ceil(6/2) = 6 cycles.
  constexpr size_t kShards = 6;
  constexpr uint64_t kStarvation = 3;
  constexpr size_t kBudget = 2;
  constexpr uint64_t kBound = kStarvation + (kShards + kBudget - 1) / kBudget;
  RetrainSchedulerOptions o;
  o.budget = kBudget;
  o.starvation_cycles = kStarvation;
  std::vector<uint64_t> waited(kShards, 0);
  for (int cycle = 0; cycle < 60; ++cycle) {
    std::vector<ShardSignal> signals;
    for (size_t i = 0; i < kShards; ++i) {
      // Skewed constant pressure: shard 0 dwarfs the rest every cycle.
      uint64_t pending = i == 0 ? 1000000 : 10 + static_cast<uint64_t>(i);
      signals.push_back({i, pending, waited[i], 0});
    }
    std::vector<size_t> order = ScheduleRetrains(signals, o);
    EXPECT_LE(order.size(), kBudget);
    for (size_t i = 0; i < kShards; ++i) ++waited[i];
    for (size_t id : order) waited[id] = 0;
    for (size_t i = 0; i < kShards; ++i) {
      EXPECT_LE(waited[i], kBound) << "shard " << i << " starved at cycle "
                                   << cycle;
    }
  }
}

// ---------------------------------------------------------------------------
// shard_count = 1: bit-identical to ForecastService.

TEST(ShardedServiceTest, SingleShardIsBitIdenticalToForecastService) {
  ServeOptions base = FastOptions();
  ForecastService reference(base);
  ShardedServeOptions so;
  so.shard = base;
  so.shard_count = 1;
  ShardedForecastService sharded(so);

  auto offer_both = [&](int64_t first_bin, int64_t bins) {
    for (int64_t b = first_bin; b < first_bin + bins; ++b) {
      for (uint32_t t = 0; t < 6; ++t) {
        double count = 50.0 + 20.0 * std::sin(0.4 * static_cast<double>(b) +
                                              static_cast<double>(t));
        ASSERT_TRUE(reference.Offer(EventAt(t, b, count)));
        ASSERT_TRUE(sharded.Offer(EventAt(t, b, count)));
      }
    }
  };

  offer_both(0, 12);
  ASSERT_TRUE(reference.RetrainOnce().ok());
  EXPECT_EQ(sharded.RetrainCycle(), (std::vector<size_t>{0}));
  offer_both(12, 2);
  ASSERT_TRUE(reference.RetrainOnce().ok());
  EXPECT_EQ(sharded.RetrainCycle(), (std::vector<size_t>{0}));

  auto ref_snap = reference.snapshot();
  auto sh_snap = sharded.snapshot(0);
  ASSERT_TRUE(ref_snap->trained());
  ASSERT_TRUE(sh_snap->trained());
  EXPECT_EQ(ref_snap->generation, sh_snap->generation);

  // Bit-identical snapshots: the serialized forms must match byte for byte.
  BufWriter ref_w, sh_w;
  ASSERT_TRUE(SerializeSnapshot(*ref_snap, &ref_w).ok());
  ASSERT_TRUE(SerializeSnapshot(*sh_snap, &sh_w).ok());
  EXPECT_EQ(ref_w.Take(), sh_w.Take());

  for (size_t rank = 0; rank < ref_snap->cluster_count(); ++rank) {
    auto fr = ref_snap->ForecastCluster(rank);
    auto fs = sh_snap->ForecastCluster(rank);
    ASSERT_TRUE(fr.ok());
    ASSERT_TRUE(fs.ok());
    EXPECT_EQ(*fr, *fs);  // bit-identical, not merely close
  }

  // Save/load round trip: the single-shard checkpoint restores into a fresh
  // sharded service, and the *next* retrain is bit-identical to the
  // reference's next retrain (same seed-stream position).
  const std::string base_path = ::testing::TempDir() + "dbaugur_shard1_ckpt";
  ASSERT_TRUE(sharded.SaveToFiles(base_path).ok());
  ShardedForecastService restored(so);
  bool migrated = true;
  ASSERT_TRUE(restored.LoadFromFiles(base_path, &migrated).ok());
  EXPECT_FALSE(migrated);
  auto blob = reference.Save();
  ASSERT_TRUE(blob.ok());
  ForecastService reference2(base);
  ASSERT_TRUE(reference2.Load(*blob).ok());

  for (int64_t b = 14; b < 16; ++b) {
    for (uint32_t t = 0; t < 6; ++t) {
      double count = 50.0 + 20.0 * std::sin(0.4 * static_cast<double>(b) +
                                            static_cast<double>(t));
      ASSERT_TRUE(reference2.Offer(EventAt(t, b, count)));
      ASSERT_TRUE(restored.Offer(EventAt(t, b, count)));
    }
  }
  ASSERT_TRUE(reference2.RetrainOnce().ok());
  EXPECT_EQ(restored.RetrainCycle(), (std::vector<size_t>{0}));
  auto ref2_snap = reference2.snapshot();
  auto rest_snap = restored.snapshot(0);
  EXPECT_EQ(ref2_snap->generation, rest_snap->generation);
  BufWriter w2a, w2b;
  ASSERT_TRUE(SerializeSnapshot(*ref2_snap, &w2a).ok());
  ASSERT_TRUE(SerializeSnapshot(*rest_snap, &w2b).ok());
  EXPECT_EQ(w2a.Take(), w2b.Take());
}

// ---------------------------------------------------------------------------
// shard_count > 1: per-cluster forecasts match the single-shard run.

TEST(ShardedServiceTest, MultiShardClustersMatchSingleShardBitIdentical) {
  // Three template groups, each group entirely on one shard of a 3-shard
  // layout, each group sharing one waveform (distinct across groups). The
  // single-shard reference clusters the same groups, so every cluster's
  // member set exists in both runs and its forecast must be bit-identical:
  // same members, same traces, same seed-stream position (both services
  // trained the same number of cycles from the same base seed).
  constexpr size_t kShards = 3;
  auto groups = TemplatesByShard(kShards, 4);
  // Per-group shapes dissimilar even under z-normalized DTW (sine frequencies
  // alone warp together): smooth sine, monotonic ramp, bin-rate alternation.
  auto waveform = [](size_t g, int64_t b) {
    double t = static_cast<double>(b);
    switch (g) {
      case 0:
        return 60.0 + 25.0 * std::sin(0.5 * t);
      case 1:
        return 10.0 + 8.0 * t;
      default:
        return 50.0 + (b % 2 == 0 ? 40.0 : -40.0);
    }
  };

  ServeOptions base = FastOptions();
  // Traces within a group are identical (z-normalized DTW distance 0); a
  // tight radius keeps the three groups from chaining into one cluster.
  base.pipeline.clustering.radius = 1.0;
  ForecastService reference(base);
  ShardedServeOptions so;
  so.shard = base;
  so.shard_count = kShards;
  ShardedForecastService sharded(so);

  for (int64_t b = 0; b < 12; ++b) {
    for (size_t g = 0; g < kShards; ++g) {
      for (uint32_t id : groups[g]) {
        double count = waveform(g, b);
        ASSERT_TRUE(reference.Offer(EventAt(id, b, count)));
        ASSERT_TRUE(sharded.Offer(EventAt(id, b, count)));
      }
    }
  }
  ASSERT_TRUE(reference.RetrainOnce().ok());
  std::vector<size_t> order = sharded.RetrainCycle();
  EXPECT_EQ(order.size(), kShards);  // every shard had pending traffic

  auto ref_map = ClusterForecastsByMembers(*reference.snapshot());
  ASSERT_EQ(ref_map.size(), kShards);  // one cluster per group
  size_t matched = 0;
  for (size_t s = 0; s < kShards; ++s) {
    auto snap = sharded.snapshot(s);
    ASSERT_TRUE(snap->trained()) << "shard " << s;
    auto shard_map = ClusterForecastsByMembers(*snap);
    for (const auto& [members, value] : shard_map) {
      auto it = ref_map.find(members);
      ASSERT_NE(it, ref_map.end())
          << "shard " << s << " cluster members not found in single-shard run";
      EXPECT_EQ(it->second, value);  // bit-identical
      ++matched;
    }
  }
  EXPECT_EQ(matched, ref_map.size());
}

// ---------------------------------------------------------------------------
// Per-shard seed streams across save/load (satellite: single-Retrainer fix).

TEST(ShardedServiceTest, SaveMidStreamWithUnequalCycleCountsRestoresExactly) {
  constexpr size_t kShards = 2;
  auto groups = TemplatesByShard(kShards, 2);
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = kShards;
  ShardedForecastService svc(so);

  auto offer_group = [&](ShardedForecastService* s, size_t g, int64_t first,
                         int64_t bins) {
    for (int64_t b = first; b < first + bins; ++b) {
      for (uint32_t id : groups[g]) {
        double count =
            40.0 + 15.0 * std::sin((0.5 + static_cast<double>(g)) *
                                   static_cast<double>(b));
        ASSERT_TRUE(s->Offer(EventAt(id, b, count)));
      }
    }
  };

  // Shard 0 trains twice; shard 1 never trains (events stay queued).
  offer_group(&svc, 0, 0, 12);
  (void)svc.RetrainCycle();
  offer_group(&svc, 0, 12, 2);
  (void)svc.RetrainCycle();
  offer_group(&svc, 1, 0, 12);  // queued, folded by SaveToFiles
  ASSERT_EQ(svc.shard(0).stats().retrains_completed, 2u);
  ASSERT_EQ(svc.shard(1).stats().retrains_completed, 0u);

  const std::string base_path = ::testing::TempDir() + "dbaugur_midcycle_ckpt";
  ASSERT_TRUE(svc.SaveToFiles(base_path).ok());
  ShardedForecastService restored(so);
  ASSERT_TRUE(restored.LoadFromFiles(base_path).ok());

  // Drive both with identical further traffic; each shard's next retrain
  // must be bit-identical — shard 0 resumes its seed stream at cycle 2,
  // shard 1 at cycle 0, independently.
  for (auto* s : {&svc, &restored}) {
    offer_group(s, 0, 14, 2);
    offer_group(s, 1, 12, 2);
    (void)s->RetrainCycle();
  }
  for (size_t shard = 0; shard < kShards; ++shard) {
    auto a = svc.snapshot(shard);
    auto b = restored.snapshot(shard);
    ASSERT_TRUE(a->trained()) << "shard " << shard;
    EXPECT_EQ(a->generation, b->generation);
    BufWriter wa, wb;
    ASSERT_TRUE(SerializeSnapshot(*a, &wa).ok());
    ASSERT_TRUE(SerializeSnapshot(*b, &wb).ok());
    EXPECT_EQ(wa.Take(), wb.Take()) << "shard " << shard;
  }
}

// ---------------------------------------------------------------------------
// Re-hash migration.

TEST(ShardedServiceTest, MigrationAcrossShardCountsLosesNoClusterKeys) {
  ShardedServeOptions four;
  four.shard = FastOptions();
  four.shard_count = 4;
  ShardedForecastService svc4(four);
  // 24 templates spread over all shards, enough bins to train everywhere.
  for (int64_t b = 0; b < 12; ++b) {
    for (uint32_t id = 0; id < 24; ++id) {
      double count = 30.0 + 10.0 * std::sin(0.7 * static_cast<double>(b) +
                                            static_cast<double>(id % 3));
      ASSERT_TRUE(svc4.Offer(EventAt(id, b, count)));
    }
  }
  (void)svc4.RetrainCycle();
  std::set<std::string> before;
  for (size_t s = 0; s < svc4.shard_count(); ++s) {
    auto snap = svc4.snapshot(s);
    before.insert(snap->trace_names.begin(), snap->trace_names.end());
  }
  ASSERT_EQ(before.size(), 24u);

  const std::string base_path = ::testing::TempDir() + "dbaugur_migrate_ckpt";
  ASSERT_TRUE(svc4.SaveToFiles(base_path).ok());

  ShardedServeOptions two = four;
  two.shard_count = 2;
  ShardedForecastService svc2(two);
  bool migrated = false;
  ASSERT_TRUE(svc2.LoadFromFiles(base_path, &migrated).ok());
  EXPECT_TRUE(migrated);
  // Migration restores shards untrained (snapshots cannot be re-keyed); one
  // event per template makes every shard pending so one cycle rebuilds all.
  for (uint32_t id = 0; id < 24; ++id) {
    ASSERT_TRUE(svc2.Offer(EventAt(id, 12, 30.0)));
  }
  (void)svc2.RetrainCycle();
  std::set<std::string> after;
  for (size_t s = 0; s < svc2.shard_count(); ++s) {
    auto snap = svc2.snapshot(s);
    ASSERT_TRUE(snap->trained()) << "shard " << s;
    after.insert(snap->trace_names.begin(), snap->trace_names.end());
  }
  EXPECT_EQ(after, before);  // set equality: no template keys lost
}

// ---------------------------------------------------------------------------
// Determinism of the end-to-end schedule.

TEST(ShardedServiceTest, IdenticalStreamsYieldIdenticalRetrainOrder) {
  auto run = [](std::vector<std::vector<size_t>>* orders) {
    ShardedServeOptions so;
    so.shard = FastOptions();
    so.shard_count = 4;
    so.retrain_budget = 2;
    so.starvation_cycles = 3;
    ShardedForecastService svc(so);
    for (int64_t b = 0; b < 14; ++b) {
      for (uint32_t id = 0; id < 32; ++id) {
        // Skewed volume so the priority order is non-trivial.
        double count = 5.0 + static_cast<double>(id % 7);
        ASSERT_TRUE(svc.Offer(EventAt(id, b, count)));
      }
      orders->push_back(svc.RetrainCycle());
    }
  };
  std::vector<std::vector<size_t>> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
  size_t scheduled = 0;
  for (const auto& o : first) scheduled += o.size();
  EXPECT_GT(scheduled, 0u);
}

// ---------------------------------------------------------------------------
// Health surface.

TEST(ShardedServiceTest, HealthReportsPerShardRows) {
  constexpr size_t kShards = 3;
  auto groups = TemplatesByShard(kShards, 2);
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = kShards;
  ShardedForecastService svc(so);
  // Train shard 0 only; leave shard 1 queued; shard 2 idle.
  for (int64_t b = 0; b < 12; ++b) {
    for (uint32_t id : groups[0]) {
      ASSERT_TRUE(svc.Offer(EventAt(id, b, 20.0 + static_cast<double>(b))));
    }
  }
  (void)svc.RetrainCycle();
  for (uint32_t id : groups[1]) ASSERT_TRUE(svc.Offer(EventAt(id, 0, 5.0)));

  ShardedServiceHealth h = svc.Health();
  ASSERT_EQ(h.shards.size(), kShards);
  EXPECT_EQ(h.cycles, 1u);
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(h.shards[s].shard_id, s);
  }
  EXPECT_EQ(h.shards[0].state, ServiceHealth::State::kHealthy);
  EXPECT_GE(h.shards[0].generation, 1u);
  EXPECT_GT(h.shards[0].cluster_count, 0u);
  EXPECT_GT(h.shards[0].last_retrain_seconds, 0.0);
  EXPECT_GE(h.shards[0].staleness_seconds, 0.0);
  EXPECT_EQ(h.shards[1].state, ServiceHealth::State::kUntrained);
  EXPECT_GT(h.shards[1].queue_depth, 0u);
  EXPECT_EQ(h.shards[2].events_accepted, 0u);
  EXPECT_EQ(h.state, ServiceHealth::State::kHealthy);  // worst-of aggregate
}

// ---------------------------------------------------------------------------
// Concurrency smoke (ASan/TSan): producers + readers + background scheduler.

TEST(ShardedServiceTest, ConcurrentProducersReadersSchedulerSmoke) {
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard.retrain_interval_seconds = 0.001;
  so.shard_count = 4;
  so.retrain_workers = 2;
  ShardedForecastService svc(so);
  svc.Start();
  EXPECT_TRUE(svc.running());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&svc, &stop, p] {
      int64_t b = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (uint32_t id = 0; id < 32; ++id) {
          (void)svc.Offer(EventAt(id, b % 40,
                                  10.0 + static_cast<double>(p + (b % 5))));
        }
        ++b;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&svc, &stop] {
      uint32_t id = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = svc.SnapshotForTemplate(id++ % 32);
        ASSERT_NE(snap, nullptr);
        if (snap->trained()) (void)snap->ForecastCluster(0);
        (void)svc.Health();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  svc.Stop();
  EXPECT_FALSE(svc.running());
  EXPECT_GT(svc.cycles(), 0u);
  EXPECT_GT(svc.stats().events_accepted, 0u);
}

}  // namespace
}  // namespace dbaugur::serve

// Online serving tests: ingest queue semantics, binning, snapshot publication
// and generation/staleness rules, full-service save/load with bit-identical
// forecasts, and a concurrent producers + readers + retrainer smoke that the
// sanitizer presets (ASan/TSan) exercise.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "serve/ingestor.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace dbaugur::serve {
namespace {

constexpr int64_t kInterval = 600;

ServeOptions FastOptions() {
  ServeOptions o;
  o.pipeline.clustering.radius = 6.0;
  o.pipeline.clustering.min_size = 2;
  o.pipeline.clustering.dtw.window = 4;
  o.pipeline.top_k = 3;
  o.pipeline.forecaster.window = 6;
  o.pipeline.forecaster.horizon = 1;
  o.pipeline.forecaster.epochs = 2;  // serving smoke, not accuracy
  o.pipeline.forecaster.batch_size = 8;
  o.bin_interval_seconds = kInterval;
  o.queue_capacity = 4096;
  o.retrain_interval_seconds = 0.005;
  return o;
}

/// Offers `bins` bins of synthetic arrivals for `templates` templates,
/// starting at bin index `first_bin`. Every event lands in-queue (asserted).
void OfferBins(ForecastService* svc, uint32_t templates, int64_t first_bin,
               int64_t bins) {
  for (int64_t b = first_bin; b < first_bin + bins; ++b) {
    for (uint32_t t = 0; t < templates; ++t) {
      double phase = static_cast<double>(b) * 0.4 + t;
      TraceEvent e;
      e.template_id = t;
      e.timestamp = b * kInterval + 30;
      e.count = 50.0 + 20.0 * std::sin(phase);
      ASSERT_TRUE(svc->Offer(e));
    }
  }
}

TEST(TraceIngestorTest, OfferDrainPreservesEventsInOrder) {
  TraceIngestor q(IngestorOptions{16, 64});
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.Offer({i, static_cast<ts::Timestamp>(i * 10), 2.0}));
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(q.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].template_id, i);
  EXPECT_EQ(q.accepted(), 5u);
  EXPECT_EQ(q.dropped(), 0u);
  // Queue is empty again.
  out.clear();
  EXPECT_EQ(q.Drain(&out), 0u);
}

TEST(TraceIngestorTest, DropsWhenFullAndOnBadTemplateId) {
  TraceIngestor q(IngestorOptions{2, 8});
  EXPECT_TRUE(q.Offer({0, 0, 1.0}));
  EXPECT_TRUE(q.Offer({1, 0, 1.0}));
  EXPECT_FALSE(q.Offer({2, 0, 1.0}));     // full
  EXPECT_FALSE(q.Offer({99, 0, 1.0}));    // template_id >= max_templates
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.dropped(), 2u);
  // Draining frees capacity.
  std::vector<TraceEvent> out;
  q.Drain(&out);
  EXPECT_TRUE(q.Offer({3, 0, 1.0}));
}

TEST(TraceBinnerTest, FoldsIntoAlignedZeroFilledTraces) {
  TraceBinner binner(kInterval);
  // Template 0 active in bins 2 and 4; template 7 only in bin 3.
  binner.Fold({0, 2 * kInterval + 1, 3.0});
  binner.Fold({0, 2 * kInterval + 500, 2.0});  // same bin, accumulates
  binner.Fold({0, 4 * kInterval, 1.0});
  binner.Fold({7, 3 * kInterval + 10, 5.0});
  EXPECT_EQ(binner.bin_count(), 3u);  // bins 2..4
  EXPECT_EQ(binner.template_count(), 2u);

  auto traces = binner.Traces();
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->size(), 2u);
  const ts::Series& t0 = (*traces)[0];
  EXPECT_EQ(t0.name(), "template0");
  EXPECT_EQ(t0.start(), 2 * kInterval);
  EXPECT_EQ(t0.interval_seconds(), kInterval);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_DOUBLE_EQ(t0[0], 5.0);
  EXPECT_DOUBLE_EQ(t0[1], 0.0);  // zero-filled gap
  EXPECT_DOUBLE_EQ(t0[2], 1.0);
  const ts::Series& t7 = (*traces)[1];
  EXPECT_EQ(t7.name(), "template7");
  EXPECT_DOUBLE_EQ(t7[1], 5.0);
}

TEST(TraceBinnerTest, BinIndexIsEpochOriginStableAcrossSaveLoad) {
  TraceBinner binner(kInterval);
  // Pinned absolute indices, including boundary and pre-epoch timestamps: a
  // boundary event opens its bin, and negative timestamps floor toward -inf.
  EXPECT_EQ(binner.BinIndex(0), 0);
  EXPECT_EQ(binner.BinIndex(kInterval - 1), 0);
  EXPECT_EQ(binner.BinIndex(kInterval), 1);
  EXPECT_EQ(binner.BinIndex(7 * kInterval), 7);
  EXPECT_EQ(binner.BinIndex(7 * kInterval - 1), 6);
  EXPECT_EQ(binner.BinIndex(-1), -1);
  EXPECT_EQ(binner.BinIndex(-kInterval), -1);
  EXPECT_EQ(binner.BinIndex(-kInterval - 1), -2);

  // The origin is the epoch, never the first folded event: binners with
  // different histories — including one restored by Save/Load — must map a
  // boundary timestamp to the same absolute bin.
  binner.Fold({0, 5 * kInterval + 10, 1.0});
  BufWriter w;
  binner.Save(&w);
  std::vector<uint8_t> blob = w.Take();
  TraceBinner restored(kInterval);
  BufReader r(blob);
  ASSERT_TRUE(restored.Load(&r).ok());
  TraceBinner fresh(kInterval);
  fresh.Fold({0, 9 * kInterval, 1.0});  // different first event
  const ts::Timestamp boundary = 7 * kInterval;
  EXPECT_EQ(binner.BinIndex(boundary), 7);
  EXPECT_EQ(restored.BinIndex(boundary), 7);
  EXPECT_EQ(fresh.BinIndex(boundary), 7);

  // And folding that boundary event lands its count in bin 7 everywhere.
  restored.Fold({0, boundary, 2.0});
  fresh.Fold({0, boundary, 2.0});
  auto rt = restored.Traces();
  auto ft = fresh.Traces();
  ASSERT_TRUE(rt.ok() && ft.ok());
  // restored covers bins 5..7 -> index 2; fresh covers 7..9 -> index 0.
  EXPECT_DOUBLE_EQ((*rt)[0].values()[2], 2.0);
  EXPECT_DOUBLE_EQ((*ft)[0].values()[0], 2.0);
  EXPECT_DOUBLE_EQ((*ft)[0].values()[2], 1.0);  // the original bin-9 event
}

TEST(TraceBinnerTest, StateRoundTripAndTruncationRejection) {
  TraceBinner binner(kInterval);
  binner.Fold({1, 5 * kInterval, 4.0});
  binner.Fold({2, 9 * kInterval, 8.0});
  BufWriter w;
  binner.Save(&w);
  std::vector<uint8_t> blob = w.Take();

  TraceBinner restored(kInterval);
  BufReader r(blob);
  ASSERT_TRUE(restored.Load(&r).ok());
  EXPECT_EQ(restored.bin_count(), binner.bin_count());
  EXPECT_EQ(restored.template_count(), binner.template_count());
  auto a = binner.Traces();
  auto b = restored.Traces();
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].values(), (*b)[i].values());
  }

  // Truncation leaves the destination untouched.
  std::vector<uint8_t> cut(blob.begin(), blob.begin() + 10);
  TraceBinner untouched(kInterval);
  untouched.Fold({3, 0, 1.0});
  BufReader cr(cut);
  EXPECT_FALSE(untouched.Load(&cr).ok());
  EXPECT_EQ(untouched.template_count(), 1u);
}

TEST(ForecastServiceTest, EmptySnapshotBeforeTraining) {
  ForecastService svc(FastOptions());
  auto snap = svc.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->generation, 0u);
  EXPECT_FALSE(snap->trained());
  EXPECT_EQ(svc.ForecastCluster(0).status().code(),
            StatusCode::kFailedPrecondition);
  // Not enough data: the cycle is a skip, not an error.
  ASSERT_TRUE(svc.RetrainOnce().ok());
  EXPECT_EQ(svc.generation(), 0u);
  EXPECT_EQ(svc.stats().retrains_skipped, 1u);
}

TEST(ForecastServiceTest, PublishesGenerationsAndKeepsOldSnapshotsFrozen) {
  ForecastService svc(FastOptions());
  OfferBins(&svc, 3, 0, 16);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  EXPECT_EQ(svc.generation(), 1u);
  auto gen1 = svc.snapshot();
  ASSERT_TRUE(gen1->trained());
  EXPECT_EQ(gen1->trace_count(), 3u);
  auto f1 = gen1->ForecastCluster(0);
  ASSERT_TRUE(f1.ok());
  EXPECT_TRUE(std::isfinite(*f1));

  // New data, new generation; a reader still holding gen1 sees it unchanged.
  OfferBins(&svc, 3, 16, 8);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  EXPECT_EQ(svc.generation(), 2u);
  auto gen2 = svc.snapshot();
  EXPECT_EQ(gen2->generation, 2u);
  EXPECT_EQ(gen1->generation, 1u);
  auto f1_again = gen1->ForecastCluster(0);
  ASSERT_TRUE(f1_again.ok());
  EXPECT_EQ(*f1_again, *f1);

  // Trace-level forecasts scale the cluster forecast; every trace resolves.
  for (size_t i = 0; i < gen2->trace_count(); ++i) {
    auto ft = gen2->ForecastTrace(i);
    if (ft.ok()) EXPECT_TRUE(std::isfinite(*ft));
  }
  ServeStats st = svc.stats();
  EXPECT_EQ(st.retrains_completed, 2u);
  EXPECT_EQ(st.events_dropped, 0u);
}

TEST(ForecastServiceTest, SaveLoadRoundTripServesIdenticalForecasts) {
  ForecastService svc(FastOptions());
  OfferBins(&svc, 3, 0, 16);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  auto blob = svc.Save();
  ASSERT_TRUE(blob.ok());

  ForecastService restored(FastOptions());
  ASSERT_TRUE(restored.Load(*blob).ok());
  EXPECT_EQ(restored.generation(), svc.generation());
  auto a = svc.snapshot();
  auto b = restored.snapshot();
  ASSERT_EQ(a->cluster_count(), b->cluster_count());
  for (size_t rank = 0; rank < a->cluster_count(); ++rank) {
    auto fa = a->ForecastCluster(rank);
    auto fb = b->ForecastCluster(rank);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_EQ(*fa, *fb);  // bit-identical, not merely close
  }
  ASSERT_EQ(a->trace_count(), b->trace_count());
  for (size_t i = 0; i < a->trace_count(); ++i) {
    auto fa = a->ForecastTrace(i);
    auto fb = b->ForecastTrace(i);
    ASSERT_EQ(fa.ok(), fb.ok());
    if (fa.ok()) EXPECT_EQ(*fa, *fb);
  }

  // The retrain seed stream resumed where it left off: retraining both
  // services on the same (persisted) history yields identical forecasts.
  ASSERT_TRUE(svc.RetrainOnce().ok());
  ASSERT_TRUE(restored.RetrainOnce().ok());
  EXPECT_EQ(svc.generation(), restored.generation());
  auto a2 = svc.snapshot();
  auto b2 = restored.snapshot();
  ASSERT_EQ(a2->cluster_count(), b2->cluster_count());
  for (size_t rank = 0; rank < a2->cluster_count(); ++rank) {
    auto fa = a2->ForecastCluster(rank);
    auto fb = b2->ForecastCluster(rank);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_EQ(*fa, *fb);
  }
}

TEST(ForecastServiceTest, LoadRejectsCorruptBlobsAndKeepsServing) {
  ForecastService svc(FastOptions());
  OfferBins(&svc, 2, 0, 12);
  ASSERT_TRUE(svc.RetrainOnce().ok());
  auto blob = svc.Save();
  ASSERT_TRUE(blob.ok());
  auto before = svc.snapshot();
  auto f_before = before->ForecastCluster(0);
  ASSERT_TRUE(f_before.ok());

  // Bad magic.
  std::vector<uint8_t> bad = *blob;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(svc.Load(bad).ok());
  // Truncated.
  std::vector<uint8_t> cut(blob->begin(),
                           blob->begin() + static_cast<long>(blob->size() / 2));
  EXPECT_FALSE(svc.Load(cut).ok());
  // Nudge the stored cluster-0 forecast by one ulp: the restored ensemble
  // then no longer reproduces it and the bit-identity check must reject.
  std::vector<uint8_t> flipped = *blob;
  uint8_t pattern[8];
  std::memcpy(pattern, &*f_before, sizeof(pattern));
  auto it = std::search(flipped.begin(), flipped.end(), std::begin(pattern),
                        std::end(pattern));
  ASSERT_NE(it, flipped.end());
  *it ^= 0x01;
  EXPECT_FALSE(svc.Load(flipped).ok());

  // The service never stopped serving its original snapshot.
  EXPECT_EQ(svc.generation(), 1u);
  auto f_after = svc.ForecastCluster(0);
  ASSERT_TRUE(f_after.ok());
  EXPECT_EQ(*f_after, *f_before);

  // The pristine blob still loads.
  EXPECT_TRUE(svc.Load(*blob).ok());
}

TEST(ForecastServiceTest, ConcurrentProducersReadersAndRetrainerSmoke) {
  ServeOptions opts = FastOptions();
  opts.pipeline.forecaster.window = 4;
  opts.pipeline.forecaster.epochs = 1;
  ForecastService svc(opts);
  // Seed enough history that the first background cycle can train.
  OfferBins(&svc, 2, 0, 10);
  svc.Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  // Small thread counts: this must stay fast under TSan on a 1-core CI box.
  std::thread producers[2];
  for (int p = 0; p < 2; ++p) {
    producers[p] = std::thread([&svc, &stop, p] {
      int64_t bin = 10;
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint32_t t = 0; t < 2; ++t) {
          svc.Offer({t, bin * kInterval + p, 1.0});
        }
        ++bin;
        std::this_thread::yield();
      }
    });
  }
  std::thread readers[2];
  for (int q = 0; q < 2; ++q) {
    readers[q] = std::thread([&svc, &stop, &reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = svc.snapshot();
        if (snap->trained()) {
          auto f = snap->ForecastCluster(0);
          if (f.ok()) reads.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::yield();
      }
    });
  }

  // Wait until at least one retrain published while the others keep running.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (svc.generation() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : producers) t.join();
  for (auto& t : readers) t.join();
  svc.Stop();

  EXPECT_GE(svc.generation(), 1u);
  ServeStats st = svc.stats();
  EXPECT_GE(st.retrains_completed, 1u);
  EXPECT_GT(st.events_accepted, 0u);
  // Start/Stop are idempotent.
  svc.Stop();
  svc.Start();
  svc.Stop();
}

// --- absolute clock-skew quarantine (pre-epoch / far-future bounds) ----------

TEST(TraceIngestorTest, QuarantinesPreEpochAndFarFutureTimestamps) {
  TraceIngestor q(IngestorOptions{16, 64});
  EXPECT_FALSE(q.Offer({0, -1, 1.0}));                     // pre-epoch
  EXPECT_FALSE(q.Offer({0, 4102444801, 1.0}));             // past 2100-01-01
  EXPECT_TRUE(q.Offer({0, 0, 1.0}));                       // epoch boundary in
  EXPECT_TRUE(q.Offer({0, 4102444800, 1.0}));              // upper boundary in
  const IngestDropStats drops = q.drop_stats();
  EXPECT_EQ(drops.pre_epoch, 1u);
  EXPECT_EQ(drops.future, 1u);
  EXPECT_EQ(drops.quarantined(), 2u);
  EXPECT_EQ(q.accepted(), 2u);
}

TEST(TraceIngestorTest, FarFutureEventCannotPoisonTheLatenessReference) {
  // Before the absolute bounds, one garbage far-future timestamp became the
  // lateness reference and stale-dropped every honest event after it.
  TraceIngestor q(IngestorOptions{16, 64});
  EXPECT_TRUE(q.Offer({0, 1000, 1.0}));
  EXPECT_FALSE(q.Offer({0, 4102444801, 1.0}));  // quarantined, not accepted
  EXPECT_TRUE(q.Offer({0, 1001, 1.0}));         // still accepted
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.drop_stats().future, 1u);
}

TEST(TraceIngestorTest, Int64ExtremesWithBoundsDisabledHaveNoOverflow) {
  // Disabling both bounds lets INT64 extremes reach the lateness check; the
  // overflow-aware cutoff must neither trap (UBSan) nor mis-drop.
  IngestorOptions opts{16, 64};
  opts.max_lateness_seconds = 3600;
  opts.min_timestamp_seconds = -1;  // disable both absolute bounds
  opts.max_timestamp_seconds = -1;
  TraceIngestor q(opts);
  EXPECT_TRUE(q.Offer({0, std::numeric_limits<int64_t>::min(), 1.0}));
  // cutoff = INT64_MIN - 3600 wraps; the overflow guard means "nothing is
  // stale", so a later honest event is accepted, not dropped.
  EXPECT_TRUE(q.Offer({0, 0, 1.0}));
  EXPECT_TRUE(q.Offer({0, std::numeric_limits<int64_t>::max(), 1.0}));
  // Now the reference is INT64_MAX: an ancient event is stale, and the
  // subtraction INT64_MAX - 3600 is well-defined.
  EXPECT_FALSE(q.Offer({0, 0, 1.0}));
  EXPECT_EQ(q.drop_stats().stale, 1u);
  EXPECT_EQ(q.accepted(), 3u);
}

TEST(TraceIngestorTest, BoundsAreConfigurable) {
  IngestorOptions opts{16, 64};
  opts.min_timestamp_seconds = 500;
  opts.max_timestamp_seconds = 1000;
  TraceIngestor q(opts);
  EXPECT_FALSE(q.Offer({0, 499, 1.0}));
  EXPECT_TRUE(q.Offer({0, 500, 1.0}));
  EXPECT_TRUE(q.Offer({0, 1000, 1.0}));
  EXPECT_FALSE(q.Offer({0, 1001, 1.0}));
  EXPECT_EQ(q.drop_stats().pre_epoch, 1u);
  EXPECT_EQ(q.drop_stats().future, 1u);
}

TEST(ForecastServiceTest, SkewBoundsPassThroughToIngest) {
  ServeOptions o = FastOptions();
  o.min_timestamp_seconds = 100;
  o.max_timestamp_seconds = 2000;
  ForecastService svc(o);
  EXPECT_FALSE(svc.Offer({0, 99, 1.0}));
  EXPECT_FALSE(svc.Offer({0, 2001, 1.0}));
  EXPECT_TRUE(svc.Offer({0, 150, 1.0}));
  const ServeStats stats = svc.stats();
  EXPECT_EQ(stats.events_accepted, 1u);
  EXPECT_EQ(stats.events_quarantined, 2u);
}

}  // namespace
}  // namespace dbaugur::serve

// Concurrent retrain execution tests: CancelToken latching semantics,
// OverloadController's pinned escalate/recover schedule, RetrainWorkerPool
// schedule-order + concurrency + watchdog behavior, the workers=N vs
// sequential snapshot bit-identity contract, hang-storm degradation and
// recovery through ShardedForecastService, the overload ladder end-to-end,
// and a producers + cycles + checkpoints stress the sanitizer presets
// (ASan/TSan) exercise.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "serve/retrain_scheduler.h"
#include "serve/retrain_workers.h"
#include "serve/sharded_service.h"
#include "serve/snapshot.h"

// Sanitizer builds run retrains an order of magnitude slower, so tests that
// pin exact watchdog-cancellation counts against a tight deadline must widen
// it there — a genuine (healthy) retrain missing the deadline would inflate
// the count. Armed hang faults stall until cancelled, so they are caught at
// any deadline; only the wall-clock cost changes.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DBAUGUR_WORKERS_TEST_SANITIZED 1
#endif
#if !defined(DBAUGUR_WORKERS_TEST_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DBAUGUR_WORKERS_TEST_SANITIZED 1
#endif
#endif

namespace dbaugur::serve {
namespace {

constexpr int64_t kInterval = 600;

#if defined(DBAUGUR_WORKERS_TEST_SANITIZED)
constexpr double kHangDeadlineSeconds = 1.0;
#else
constexpr double kHangDeadlineSeconds = 0.05;
#endif

ServeOptions FastOptions() {
  ServeOptions o;
  o.pipeline.clustering.radius = 6.0;
  o.pipeline.clustering.min_size = 2;
  o.pipeline.clustering.dtw.window = 4;
  o.pipeline.top_k = 3;
  o.pipeline.forecaster.window = 6;
  o.pipeline.forecaster.horizon = 1;
  o.pipeline.forecaster.epochs = 2;  // serving smoke, not accuracy
  o.pipeline.forecaster.batch_size = 8;
  o.bin_interval_seconds = kInterval;
  o.queue_capacity = 1 << 15;
  o.retrain_interval_seconds = 0.005;
  return o;
}

TraceEvent EventAt(uint32_t template_id, int64_t bin, double count) {
  TraceEvent e;
  e.template_id = template_id;
  e.timestamp = bin * kInterval + 30;
  e.count = count;
  return e;
}

/// First `per_shard` template ids routing to each of `shard_count` shards.
std::vector<std::vector<uint32_t>> TemplatesByShard(size_t shard_count,
                                                    size_t per_shard) {
  std::vector<std::vector<uint32_t>> groups(shard_count);
  for (uint32_t id = 0; id < 4096; ++id) {
    auto& g = groups[ShardOfKey(id, shard_count)];
    if (g.size() < per_shard) g.push_back(id);
    bool done = true;
    for (const auto& grp : groups) done = done && grp.size() == per_shard;
    if (done) break;
  }
  return groups;
}

void OfferGroupWave(ShardedForecastService* svc,
                    const std::vector<std::vector<uint32_t>>& groups,
                    int64_t first_bin, int64_t bins) {
  for (int64_t b = first_bin; b < first_bin + bins; ++b) {
    for (size_t g = 0; g < groups.size(); ++g) {
      for (uint32_t id : groups[g]) {
        double count = 40.0 + 15.0 * std::sin((0.5 + static_cast<double>(g)) *
                                              static_cast<double>(b));
        ASSERT_TRUE(svc->Offer(EventAt(id, b, count)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CancelToken.

TEST(CancelTokenTest, LatchesOnceFirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  token.Cancel("deadline overrun");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "deadline overrun");
  token.Cancel("second caller");  // first cancel wins
  EXPECT_EQ(token.reason(), "deadline overrun");
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
}

TEST(CancelTokenTest, CancelledStatusCarriesCodeAndReason) {
  CancelToken token;
  token.Cancel("watchdog: shard 3 overran");
  Status st = CancelledStatus(token, "serve: retrain");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("serve: retrain"), std::string::npos);
  EXPECT_NE(st.message().find("watchdog: shard 3 overran"), std::string::npos);
}

TEST(CancelTokenTest, CrossThreadLatchUnblocksAPoller) {
  CancelToken token;
  std::atomic<bool> unblocked{false};
  std::thread poller([&] {
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    unblocked.store(true, std::memory_order_release);
  });
  token.Cancel("stop polling");
  poller.join();
  EXPECT_TRUE(unblocked.load(std::memory_order_acquire));
  EXPECT_EQ(token.reason(), "stop polling");
}

// ---------------------------------------------------------------------------
// OverloadController: a pure state machine, so the exact escalate/recover
// schedule is pinned.

TEST(OverloadControllerTest, EscalatesOnSustainedGrowthRecoversOnDrain) {
  OverloadOptions o;
  o.grow_cycles = 2;
  o.drain_cycles = 2;
  o.max_level = 2;
  OverloadController c(o);
  EXPECT_EQ(c.level(), 0u);
  // First observation has no predecessor: never "growing".
  EXPECT_EQ(c.Observe(10), 0u);
  EXPECT_EQ(c.Observe(11), 0u);  // growth streak 1
  EXPECT_EQ(c.Observe(12), 1u);  // growth streak 2 -> level 1
  EXPECT_EQ(c.Observe(13), 1u);
  EXPECT_EQ(c.Observe(14), 2u);  // -> level 2 (the cap)
  EXPECT_EQ(c.Observe(15), 2u);
  EXPECT_EQ(c.Observe(16), 2u);  // capped: streak resets, level holds
  // Flat backlog is "not growing": drain streaks walk the ladder back down.
  EXPECT_EQ(c.Observe(16), 2u);  // drain streak 1
  EXPECT_EQ(c.Observe(16), 1u);  // drain streak 2 -> level 1
  EXPECT_EQ(c.Observe(5), 1u);
  EXPECT_EQ(c.Observe(0), 0u);   // fully recovered
  EXPECT_EQ(c.Observe(0), 0u);   // stays at the floor
}

TEST(OverloadControllerTest, GrowthStreakResetsOnAnyDrainCycle) {
  OverloadOptions o;
  o.grow_cycles = 3;
  OverloadController c(o);
  (void)c.Observe(1);
  (void)c.Observe(2);  // streak 1
  (void)c.Observe(3);  // streak 2
  (void)c.Observe(3);  // flat: streak resets before reaching 3
  (void)c.Observe(4);  // streak 1 again
  (void)c.Observe(5);  // streak 2
  EXPECT_EQ(c.level(), 0u);
  EXPECT_EQ(c.Observe(6), 1u);  // streak 3 -> level 1
}

TEST(OverloadControllerTest, ZeroGrowCyclesDisablesAdaptation) {
  OverloadOptions o;
  o.grow_cycles = 0;
  OverloadController c(o);
  for (uint64_t backlog = 1; backlog <= 20; ++backlog) {
    EXPECT_EQ(c.Observe(backlog), 0u);
  }
  EXPECT_EQ(c.IntervalScale(), 1.0);
}

TEST(OverloadControllerTest, DegradedBudgetHalvesPerLevelWithUnitFloor) {
  OverloadOptions o;
  o.grow_cycles = 1;
  o.drain_cycles = 1;
  o.max_level = 10;
  OverloadController c(o);
  // Level 0: an explicit budget passes through; 0 means "every shard".
  EXPECT_EQ(c.DegradedBudget(8, 16), 8u);
  EXPECT_EQ(c.DegradedBudget(0, 16), 16u);
  EXPECT_EQ(c.IntervalScale(), 1.0);
  uint64_t backlog = 0;
  auto escalate = [&] { (void)c.Observe(++backlog); (void)c.Observe(++backlog); };
  escalate();  // level 1 (first Observe seeds have_last)
  EXPECT_EQ(c.level(), 1u);
  EXPECT_EQ(c.DegradedBudget(8, 16), 4u);
  EXPECT_EQ(c.DegradedBudget(0, 16), 8u);
  EXPECT_EQ(c.IntervalScale(), 2.0);
  (void)c.Observe(++backlog);  // level 2
  EXPECT_EQ(c.DegradedBudget(8, 16), 2u);
  (void)c.Observe(++backlog);  // level 3
  EXPECT_EQ(c.DegradedBudget(8, 16), 1u);
  (void)c.Observe(++backlog);  // level 4: floor holds at 1, never 0
  EXPECT_EQ(c.DegradedBudget(8, 16), 1u);
  EXPECT_EQ(c.IntervalScale(), 16.0);
}

// ---------------------------------------------------------------------------
// RetrainWorkerPool.

TEST(RetrainWorkerPoolTest, SingleWorkerRunsTasksInScheduleOrder) {
  RetrainWorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<size_t> ran;
  std::vector<size_t> order{3, 1, 4, 1, 5};
  RetrainCycleReport report = pool.RunCycle(
      order, /*deadline_seconds=*/0.0,
      [&](size_t shard_id, size_t worker_idx, const CancelToken* cancel) {
        EXPECT_EQ(worker_idx, 0u);
        EXPECT_NE(cancel, nullptr);
        ran.push_back(shard_id);
        return Status::OK();
      });
  EXPECT_EQ(ran, order);  // one worker: claim order IS execution order
  EXPECT_EQ(report.completed, order.size());
  EXPECT_EQ(report.cancelled, 0u);
  ASSERT_EQ(report.tasks.size(), order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(report.tasks[i].shard_id, order[i]);
    EXPECT_FALSE(report.tasks[i].cancelled);
    EXPECT_GE(report.tasks[i].seconds, 0.0);
  }
}

TEST(RetrainWorkerPoolTest, EmptyOrderReturnsImmediately) {
  RetrainWorkerPool pool(2);
  RetrainCycleReport report = pool.RunCycle(
      {}, 1.0, [&](size_t, size_t, const CancelToken*) {
        ADD_FAILURE() << "work ran for an empty schedule";
        return Status::OK();
      });
  EXPECT_TRUE(report.tasks.empty());
}

TEST(RetrainWorkerPoolTest, ConcurrencyNeverExceedsWorkerCount) {
  constexpr size_t kWorkers = 2;
  RetrainWorkerPool pool(kWorkers);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  std::vector<size_t> order(8);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  RetrainCycleReport report = pool.RunCycle(
      order, 0.0, [&](size_t, size_t, const CancelToken*) {
        int now = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
        int prev = peak.load(std::memory_order_relaxed);
        while (now > prev &&
               !peak.compare_exchange_weak(prev, now,
                                           std::memory_order_relaxed)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
        return Status::OK();
      });
  EXPECT_EQ(report.completed, order.size());
  EXPECT_LE(peak.load(), static_cast<int>(kWorkers));
  EXPECT_GE(peak.load(), 1);
}

TEST(RetrainWorkerPoolTest, WatchdogCancelsAnOverrunningTask) {
  RetrainWorkerPool pool(1);
  const auto t0 = std::chrono::steady_clock::now();
  RetrainCycleReport report = pool.RunCycle(
      {7}, /*deadline_seconds=*/0.05,
      [&](size_t, size_t, const CancelToken* cancel) {
        // Cooperative hang: unwinds only when the watchdog latches the token.
        // The 2s bound means a broken watchdog fails the test rather than
        // hanging it.
        for (int i = 0; i < 2000 && !cancel->cancelled(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_TRUE(cancel->cancelled());
        return CancelledStatus(*cancel, "test: hung task");
      });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(report.tasks.size(), 1u);
  EXPECT_TRUE(report.tasks[0].cancelled);
  EXPECT_EQ(report.cancelled, 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_NE(report.tasks[0].cancel_reason.find("watchdog"), std::string::npos);
  EXPECT_NE(report.tasks[0].cancel_reason.find("deadline"), std::string::npos);
  // Cancelled within ~one deadline of the overrun, not after the 2s bound.
  EXPECT_LT(elapsed, 1.0);
}

TEST(RetrainWorkerPoolTest, ZeroDeadlineDisablesTheWatchdog) {
  RetrainWorkerPool pool(2);
  RetrainCycleReport report = pool.RunCycle(
      {0, 1}, /*deadline_seconds=*/0.0,
      [&](size_t, size_t, const CancelToken* cancel) {
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        EXPECT_FALSE(cancel->cancelled());
        return Status::OK();
      });
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.cancelled, 0u);
}

TEST(RetrainWorkerPoolTest, FastTasksUnderDeadlineAreNeverCancelled) {
  RetrainWorkerPool pool(4);
  std::vector<size_t> order(16);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  RetrainCycleReport report = pool.RunCycle(
      order, /*deadline_seconds=*/5.0,
      [&](size_t, size_t, const CancelToken*) { return Status::OK(); });
  EXPECT_EQ(report.completed, order.size());
  EXPECT_EQ(report.cancelled, 0u);
}

// ---------------------------------------------------------------------------
// Determinism contract: published snapshots for completed shards are
// bit-identical at any worker count.

TEST(WorkerDeterminismTest, FourWorkersMatchSequentialSnapshotsBitIdentical) {
  constexpr size_t kShards = 3;
  auto groups = TemplatesByShard(kShards, 4);
  ShardedServeOptions seq;
  seq.shard = FastOptions();
  seq.shard_count = kShards;
  seq.retrain_workers = 1;
  ShardedServeOptions par = seq;
  par.retrain_workers = 4;
  ShardedForecastService sequential(seq);
  ShardedForecastService concurrent(par);

  for (int round = 0; round < 2; ++round) {
    OfferGroupWave(&sequential, groups, round * 12, 12);
    OfferGroupWave(&concurrent, groups, round * 12, 12);
    std::vector<size_t> a = sequential.RetrainCycle();
    std::vector<size_t> b = concurrent.RetrainCycle();
    EXPECT_EQ(a, b);  // identical schedules at any worker count
  }
  for (size_t s = 0; s < kShards; ++s) {
    auto a = sequential.snapshot(s);
    auto b = concurrent.snapshot(s);
    ASSERT_TRUE(a->trained()) << "shard " << s;
    ASSERT_TRUE(b->trained()) << "shard " << s;
    BufWriter wa, wb;
    ASSERT_TRUE(SerializeSnapshot(*a, &wa).ok());
    ASSERT_TRUE(SerializeSnapshot(*b, &wb).ok());
    EXPECT_EQ(wa.Take(), wb.Take()) << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Hang storm through the service: watchdog cancels, shards serve last-good
// marked degraded-stale, and a later clean cycle recovers.

class ServeWorkersFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override {
    const char* env = std::getenv("DBAUGUR_FAULT_SPEC");
    if (env != nullptr && *env != '\0') {
      ASSERT_TRUE(fault::Configure(env).ok());
    } else {
      fault::Reset();
    }
  }
};

TEST_F(ServeWorkersFaultTest, HangStormWatchdogDegradesThenRecovers) {
  constexpr size_t kShards = 3;
  auto groups = TemplatesByShard(kShards, 4);
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = kShards;
  so.retrain_workers = 2;
  so.retrain_deadline_seconds = kHangDeadlineSeconds;
  ShardedForecastService svc(so);
  OfferGroupWave(&svc, groups, 0, 12);

  // Exactly the first cycle's three retrains hang (3 shards pending, n:3 —
  // every hit fires, so the storm is deterministic at any worker count).
  ASSERT_TRUE(fault::Configure("serve.retrain.hang=n:3").ok());
  std::vector<size_t> order = svc.RetrainCycle();
  ASSERT_EQ(order.size(), kShards);

  ShardedServiceHealth h = svc.Health();
  EXPECT_EQ(h.retrains_cancelled, kShards);
  EXPECT_EQ(h.stale_shards, kShards);
  for (const ShardHealth& row : h.shards) {
    EXPECT_EQ(row.retrains_cancelled, 1u);
    EXPECT_TRUE(row.degraded_stale);
    EXPECT_NE(row.stale_reason.find("watchdog"), std::string::npos);
    EXPECT_EQ(row.generation, 0u);  // still serving the last-good snapshot
    EXPECT_EQ(row.consecutive_failures, 1u);
    EXPECT_GE(row.last_error_age_seconds, 0.0);
    ASSERT_NE(svc.snapshot(row.shard_id), nullptr);
  }

  // Storm over: the backoff (one cycle after one failure) delays each shard
  // one scheduler cycle, then a clean retrain publishes and clears the
  // degraded-stale marker.
  fault::Reset();
  for (int cycle = 0; cycle < 6; ++cycle) {
    (void)svc.RetrainCycle();
    if (svc.Health().stale_shards == 0) break;
  }
  h = svc.Health();
  EXPECT_EQ(h.stale_shards, 0u);
  EXPECT_EQ(h.retrains_cancelled, kShards);  // history, not current state
  for (const ShardHealth& row : h.shards) {
    EXPECT_FALSE(row.degraded_stale);
    EXPECT_EQ(row.stale_reason, "");
    EXPECT_GE(row.generation, 1u) << "shard " << row.shard_id;
    EXPECT_EQ(row.consecutive_failures, 0u);
  }
}

TEST_F(ServeWorkersFaultTest, SlowRetrainUnderWideDeadlineCompletes) {
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = 1;
  so.retrain_workers = 1;
  so.retrain_deadline_seconds = 30.0;
  ShardedForecastService svc(so);
  auto groups = TemplatesByShard(1, 4);
  OfferGroupWave(&svc, groups, 0, 12);
  ASSERT_TRUE(fault::Configure("serve.retrain.slow=n:1").ok());
  std::vector<size_t> order = svc.RetrainCycle();
  ASSERT_EQ(order.size(), 1u);
  ShardedServiceHealth h = svc.Health();
  EXPECT_EQ(h.retrains_cancelled, 0u);
  EXPECT_EQ(h.stale_shards, 0u);
  EXPECT_GE(h.shards[0].generation, 1u);
  // The injected ~200ms stall is visible in the retrain duration.
  EXPECT_GE(h.shards[0].last_retrain_seconds, 0.15);
}

// ---------------------------------------------------------------------------
// Overload ladder end-to-end.

TEST(ServeOverloadTest, LadderRisesUnderBacklogAndDrainsWhenIdle) {
  constexpr size_t kShards = 4;
  auto groups = TemplatesByShard(kShards, 2);
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = kShards;
  so.retrain_workers = 2;
  so.retrain_budget = 4;
  so.overload.grow_cycles = 1;  // escalate on every growth cycle
  so.overload.drain_cycles = 1;
  so.overload.max_level = 2;
  ShardedForecastService svc(so);

  ShardedServiceHealth h = svc.Health();
  EXPECT_EQ(h.overload_level, 0u);
  EXPECT_EQ(h.effective_budget, 4u);
  EXPECT_EQ(h.interval_multiplier, 1.0);

  // Strictly growing sampled backlog: each cycle offers a strictly larger
  // block of fresh (monotonically advancing — never stale-dropped) bins than
  // the service can drain under its shrinking budget. The first cycle seeds
  // the controller; each later growth cycle escalates one level to the cap.
  int64_t next_bin = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    int64_t bins = 12 * (cycle + 1);
    OfferGroupWave(&svc, groups, next_bin, bins);
    next_bin += bins;
    (void)svc.RetrainCycle();
  }
  h = svc.Health();
  EXPECT_EQ(h.overload_level, 2u);   // capped
  EXPECT_EQ(h.effective_budget, 1u);  // 4 >> 2
  EXPECT_EQ(h.interval_multiplier, 4.0);

  // Stop offering: backlog stops growing, the ladder walks back down, and
  // the budget recovers.
  for (int cycle = 0; cycle < 6 && svc.Health().overload_level > 0; ++cycle) {
    (void)svc.RetrainCycle();
  }
  h = svc.Health();
  EXPECT_EQ(h.overload_level, 0u);
  EXPECT_EQ(h.effective_budget, 4u);
  EXPECT_EQ(h.interval_multiplier, 1.0);
}

// ---------------------------------------------------------------------------
// Health aggregates (previously only per-shard): accepted/dropped/quarantined
// sums and the per-category drop breakdown.

TEST(ServeHealthAggregateTest, SumsIngestCountersAcrossShards) {
  constexpr size_t kShards = 3;
  auto groups = TemplatesByShard(kShards, 2);
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = kShards;
  ShardedForecastService svc(so);
  size_t offered = 0;
  for (size_t g = 0; g < kShards; ++g) {
    for (uint32_t id : groups[g]) {
      ASSERT_TRUE(svc.Offer(EventAt(id, 1, 5.0)));
      ++offered;
    }
  }
  // Two quarantine-class drops (nonfinite, negative) on shard 0's owner.
  uint32_t id0 = groups[0][0];
  EXPECT_FALSE(svc.Offer(EventAt(id0, 1, std::nan(""))));
  EXPECT_FALSE(svc.Offer(EventAt(id0, 1, -3.0)));
  ShardedServiceHealth h = svc.Health();
  EXPECT_EQ(h.events_accepted, offered);
  EXPECT_EQ(h.events_dropped, 2u);
  EXPECT_EQ(h.events_quarantined, 2u);
  EXPECT_EQ(h.drops.nonfinite, 1u);
  EXPECT_EQ(h.drops.negative, 1u);
  EXPECT_EQ(h.drops.total(), 2u);
}

// ---------------------------------------------------------------------------
// Checkpoint-vs-cancellation stress (S3): concurrent producers, scheduler
// cycles under a hang storm with an armed watchdog, and SaveToFiles racing
// both — every checkpoint written must be loadable and all-or-nothing.

TEST_F(ServeWorkersFaultTest, CheckpointsStayLoadableUnderHangStormStress) {
  constexpr size_t kShards = 3;
  auto groups = TemplatesByShard(kShards, 3);
  ShardedServeOptions so;
  so.shard = FastOptions();
  so.shard_count = kShards;
  so.retrain_workers = 2;
  so.retrain_deadline_seconds = 0.02;
  ShardedForecastService svc(so);
  OfferGroupWave(&svc, groups, 0, 12);
  (void)svc.RetrainCycle();  // one clean generation before the storm

  // Every retrain for the rest of the test hangs until the watchdog fires.
  ASSERT_TRUE(fault::Configure("serve.retrain.hang=n:1000").ok());

  const std::string base = ::testing::TempDir() + "dbaugur_workers_stress";
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    int64_t bin = 12;
    while (!stop.load(std::memory_order_acquire)) {
      for (size_t g = 0; g < kShards; ++g) {
        for (uint32_t id : groups[g]) {
          (void)svc.Offer(EventAt(id, bin, 20.0 + (bin % 7)));
        }
      }
      ++bin;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread cycler([&] {
    for (int i = 0; i < 8; ++i) (void)svc.RetrainCycle();
    stop.store(true, std::memory_order_release);
  });
  // Checkpoints race retrains mid-hang and mid-watchdog-cancellation. Each
  // one must be complete and loadable the moment SaveToFiles returns.
  int saves = 0;
  while (!stop.load(std::memory_order_acquire)) {
    ASSERT_TRUE(svc.SaveToFiles(base).ok());
    ++saves;
    ShardedServeOptions fresh = so;
    ShardedForecastService restored(fresh);
    ASSERT_TRUE(restored.LoadFromFiles(base).ok());
    for (size_t s = 0; s < kShards; ++s) {
      ASSERT_NE(restored.snapshot(s), nullptr);
    }
  }
  producer.join();
  cycler.join();
  EXPECT_GE(saves, 1);
  // The storm really ran: the watchdog cancelled hung retrains throughout.
  EXPECT_GT(svc.Health().retrains_cancelled, 0u);
}

}  // namespace
}  // namespace dbaugur::serve

// Per-tier tests for the SIMD dispatch layer and the vectorized nn kernels.
//
// nn_kernel_equivalence_test pins the scalar tier bit-for-bit against the
// pre-PR naive kernels; this file covers the vector tiers, which are allowed
// to differ only within the documented numerics contract (nn/gemm.h,
// nn/simd_kernels.h):
//  * GemmNN/TN differ from scalar only by FMA contraction; GemmNT reduces
//    with W partial sums. Both are within an error bound that scales with
//    the reduction length and Σ|a||b| — checked against an f64 oracle here.
//  * LSTM gate backward uses plain mul/add only: bit-identical across every
//    tier. Forward differs only through the polynomial Exp/Sigmoid/Tanh
//    (a few ULP of libm).
// Every check sweeps all dispatch tiers reachable on the host, at odd/prime
// shapes, for both element widths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "nn/gemm.h"
#include "nn/lstm_kernels.h"

namespace dbaugur::nn {
namespace {

using simd::Tier;

std::vector<Tier> HostTiers() {
  Tier out[4];
  int count = simd::SupportedTiers(out);
  return std::vector<Tier>(out, out + count);
}

class TierSweepTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::ResetForcedTier(); }
};

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST_F(TierSweepTest, SupportedTiersStartAtScalarAndAscend) {
  std::vector<Tier> tiers = HostTiers();
  ASSERT_GE(tiers.size(), 1u);
  EXPECT_EQ(tiers.front(), Tier::kScalar);
  for (size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
  EXPECT_EQ(tiers.back(), simd::MaxSupportedTier());
}

TEST_F(TierSweepTest, ForceTierPinsEverySupportedTier) {
  for (Tier t : HostTiers()) {
    ASSERT_TRUE(simd::ForceTier(t)) << simd::TierName(t);
    EXPECT_EQ(simd::ActiveTier(), t) << simd::TierName(t);
  }
  simd::ResetForcedTier();
  EXPECT_LE(static_cast<int>(simd::ActiveTier()),
            static_cast<int>(simd::MaxSupportedTier()));
}

TEST_F(TierSweepTest, ForceTierRejectsUnsupportedTiers) {
  const int max = static_cast<int>(simd::MaxSupportedTier());
  Tier before = simd::ActiveTier();
  for (int t = max + 1; t <= static_cast<int>(Tier::kAvx512); ++t) {
    EXPECT_FALSE(simd::ForceTier(static_cast<Tier>(t)));
    EXPECT_EQ(simd::ActiveTier(), before) << "rejected force must not stick";
  }
}

TEST_F(TierSweepTest, TierNamesAreDistinct) {
  std::vector<std::string> names;
  for (int t = 0; t <= static_cast<int>(Tier::kAvx512); ++t) {
    names.push_back(simd::TierName(static_cast<Tier>(t)));
    EXPECT_FALSE(names.back().empty());
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST_F(TierSweepTest, CpuFeaturesMentionsEverySupportedVectorTier) {
  std::string features = simd::CpuFeatures();
  for (Tier t : HostTiers()) {
    if (t == Tier::kScalar) continue;
    EXPECT_NE(features.find(simd::TierName(t)), std::string::npos)
        << "'" << features << "' should mention " << simd::TierName(t);
  }
}

// ---------------------------------------------------------------------------
// GEMM vs the f64 oracle, every tier, both widths.
// ---------------------------------------------------------------------------

struct Shape {
  size_t m, k, n;
};

// Odd/prime shapes: below, at, and straddling every vector width in play
// (2/4/8 f64 lanes, 4/8/16 f32 lanes), plus one multi-panel size.
const Shape kShapes[] = {
    {1, 1, 1}, {1, 7, 3},   {7, 1, 13},   {3, 17, 5},
    {5, 3, 2}, {13, 7, 31}, {97, 89, 101},
};

template <typename T>
std::vector<T> RandomVec(size_t len, Rng* rng) {
  std::vector<T> v(len);
  for (auto& x : v) x = static_cast<T>(rng->Uniform(-2.0, 2.0));
  return v;
}

// Error budget for one output element: both the scalar chain and any
// contracted/W-partial vector chain are within k·eps·Σ|a||b| of the exact
// sum, so their difference is within twice that (plus slack for the
// accumulate input).
template <typename T>
double GemmTolerance(double abs_sum, size_t k) {
  return 4.0 * std::numeric_limits<T>::epsilon() *
             (static_cast<double>(k) + 2.0) * abs_sum +
         1e-300;
}

enum class Variant { kNN, kTN, kNT };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kNN:
      return "GemmNN";
    case Variant::kTN:
      return "GemmTN";
    default:
      return "GemmNT";
  }
}

// f64 oracle with per-element |a||b| sums for the tolerance. Operand layout
// matches the variant: NN a(m x k) b(k x n); TN a(k x m)^T... (a is m x k
// interpreted transposed exactly as the kernels do); NT b(n x k).
template <typename T>
void OracleAndScale(Variant v, size_t m, size_t k, size_t n,
                    const std::vector<T>& a, const std::vector<T>& b,
                    std::vector<double>* want, std::vector<double>* scale) {
  want->assign(m * n, 0.0);
  scale->assign(m * n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0.0, abs_s = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        double av, bv;
        if (v == Variant::kNN) {
          av = a[i * k + kk];
          bv = b[kk * n + j];
        } else if (v == Variant::kTN) {
          // c = a^T * b with a (red x outM), b (red x outN): the test's
          // (m, k, n) map onto GemmTN's (shared rows, output rows, cols)
          // as (k, m, n) — see the call site below.
          av = a[kk * m + i];
          bv = b[kk * n + j];
        } else {
          av = a[i * k + kk];
          bv = b[j * k + kk];
        }
        s += av * bv;
        abs_s += std::fabs(av) * std::fabs(bv);
      }
      (*want)[i * n + j] = s;
      (*scale)[i * n + j] = abs_s;
    }
  }
}

template <typename T>
void CheckGemmVariantOnActiveTier(Variant v, const Shape& s, uint64_t seed) {
  Rng rng(seed);
  const size_t asize = s.m * s.k;  // NN/NT row-major a (m x k)
  const size_t a_tn = s.k * s.m;   // TN a (k x m): reduction-major
  std::vector<T> a =
      RandomVec<T>(v == Variant::kTN ? a_tn : asize, &rng);
  std::vector<T> b = RandomVec<T>(
      v == Variant::kNT ? s.n * s.k : s.k * s.n, &rng);
  std::vector<double> want, scale;
  OracleAndScale<T>(v, s.m, s.k, s.n, a, b, &want, &scale);
  for (bool accumulate : {false, true}) {
    std::vector<T> c(s.m * s.n, T(0));
    if (accumulate) {
      for (size_t i = 0; i < c.size(); ++i) {
        c[i] = static_cast<T>(rng.Uniform(-1.0, 1.0));
      }
    }
    std::vector<double> base(c.begin(), c.end());
    if (v == Variant::kNN) {
      GemmNN(s.m, s.k, s.n, a.data(), b.data(), c.data(), accumulate);
    } else if (v == Variant::kTN) {
      // GemmTN's (m, k, n) are (shared rows, output rows, output cols).
      GemmTN(s.k, s.m, s.n, a.data(), b.data(), c.data(), accumulate);
    } else {
      GemmNT(s.m, s.k, s.n, a.data(), b.data(), c.data(), accumulate);
    }
    for (size_t i = 0; i < c.size(); ++i) {
      const double expect = want[i] + (accumulate ? base[i] : 0.0);
      const double tol =
          GemmTolerance<T>(scale[i] + std::fabs(base[i]), s.k) +
          2.0 * std::numeric_limits<T>::epsilon() * std::fabs(expect);
      ASSERT_NEAR(static_cast<double>(c[i]), expect, tol)
          << VariantName(v) << (accumulate ? "+acc" : "") << " "
          << (sizeof(T) == 8 ? "f64" : "f32") << " tier "
          << simd::TierName(simd::ActiveTier()) << " shape " << s.m << "x"
          << s.k << "x" << s.n << " flat " << i;
    }
  }
}

TEST_F(TierSweepTest, GemmMatchesOracleOnEveryTierAndWidth) {
  uint64_t seed = 17;
  for (Tier t : HostTiers()) {
    ASSERT_TRUE(simd::ForceTier(t));
    for (const Shape& s : kShapes) {
      for (Variant v : {Variant::kNN, Variant::kTN, Variant::kNT}) {
        CheckGemmVariantOnActiveTier<double>(v, s, ++seed);
        CheckGemmVariantOnActiveTier<float>(v, s, ++seed);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused LSTM gate kernels across tiers.
// ---------------------------------------------------------------------------

template <typename T>
struct GateBuffers {
  size_t batch, hidden;
  std::vector<T> z, c_prev, ig, fg, gg, og, c, tanh_c, h;

  GateBuffers(size_t b, size_t hdim, uint64_t seed) : batch(b), hidden(hdim) {
    Rng rng(seed);
    z = RandomVec<T>(b * 4 * hdim, &rng);
    c_prev = RandomVec<T>(b * hdim, &rng);
    const size_t n = b * hdim;
    ig.assign(n, T(0));
    fg.assign(n, T(0));
    gg.assign(n, T(0));
    og.assign(n, T(0));
    c.assign(n, T(0));
    tanh_c.assign(n, T(0));
    h.assign(n, T(0));
  }

  void RunForward() {
    LstmGatesForward(batch, hidden, z.data(), c_prev.data(), ig.data(),
                     fg.data(), gg.data(), og.data(), c.data(), tanh_c.data(),
                     h.data());
  }
};

// Prime batch/hidden pairs so every tier has a vector body and a tail.
const size_t kGateShapes[][2] = {{1, 1}, {3, 5}, {7, 16}, {5, 23}, {2, 61}};

TEST_F(TierSweepTest, LstmForwardMatchesScalarTierWithinUlps) {
  for (const auto& shape : kGateShapes) {
    ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
    GateBuffers<double> ref64(shape[0], shape[1], 91);
    ref64.RunForward();
    GateBuffers<float> ref32(shape[0], shape[1], 92);
    ref32.RunForward();
    for (Tier t : HostTiers()) {
      ASSERT_TRUE(simd::ForceTier(t));
      GateBuffers<double> got64(shape[0], shape[1], 91);
      got64.RunForward();
      GateBuffers<float> got32(shape[0], shape[1], 92);
      got32.RunForward();
      for (size_t i = 0; i < got64.h.size(); ++i) {
        // Gates/tanh live in [-1, 1]; c is a short plain-mul/add chain of
        // them. The polynomial Exp is within a few ULP of libm, so absolute
        // tolerances near the respective epsilons hold everywhere.
        EXPECT_NEAR(got64.c[i], ref64.c[i], 1e-12) << simd::TierName(t);
        EXPECT_NEAR(got64.h[i], ref64.h[i], 1e-12) << simd::TierName(t);
        EXPECT_NEAR(got32.c[i], ref32.c[i], 1e-4f) << simd::TierName(t);
        EXPECT_NEAR(got32.h[i], ref32.h[i], 1e-4f) << simd::TierName(t);
      }
    }
  }
}

TEST_F(TierSweepTest, LstmBackwardBitIdenticalAcrossTiers) {
  for (const auto& shape : kGateShapes) {
    const size_t batch = shape[0], hidden = shape[1];
    const size_t n = batch * hidden;
    // One forward pass (on the scalar tier) builds self-consistent gate
    // activations; the backward inputs are then fixed across tiers.
    ASSERT_TRUE(simd::ForceTier(Tier::kScalar));
    GateBuffers<double> f64(batch, hidden, 171);
    f64.RunForward();
    GateBuffers<float> f32(batch, hidden, 172);
    f32.RunForward();
    Rng rng(173);
    std::vector<double> dh64 = RandomVec<double>(n, &rng);
    std::vector<double> dc64 = RandomVec<double>(n, &rng);
    std::vector<float> dh32 = RandomVec<float>(n, &rng);
    std::vector<float> dc32 = RandomVec<float>(n, &rng);

    std::vector<double> want_dz64, want_dcp64;
    std::vector<float> want_dz32, want_dcp32;
    bool first = true;
    for (Tier t : HostTiers()) {
      ASSERT_TRUE(simd::ForceTier(t));
      std::vector<double> dz64(batch * 4 * hidden, 0.0), dcp64(n, 0.0);
      LstmGatesBackward(batch, hidden, dh64.data(), dc64.data(),
                        f64.tanh_c.data(), f64.ig.data(), f64.fg.data(),
                        f64.gg.data(), f64.og.data(), f64.c_prev.data(),
                        dz64.data(), dcp64.data());
      std::vector<float> dz32(batch * 4 * hidden, 0.0f), dcp32(n, 0.0f);
      LstmGatesBackward(batch, hidden, dh32.data(), dc32.data(),
                        f32.tanh_c.data(), f32.ig.data(), f32.fg.data(),
                        f32.gg.data(), f32.og.data(), f32.c_prev.data(),
                        dz32.data(), dcp32.data());
      if (first) {
        want_dz64 = dz64;
        want_dcp64 = dcp64;
        want_dz32 = dz32;
        want_dcp32 = dcp32;
        first = false;
        continue;
      }
      // Plain mul/add only, compiled with -ffp-contract=off: exact match.
      EXPECT_EQ(dz64, want_dz64) << simd::TierName(t);
      EXPECT_EQ(dcp64, want_dcp64) << simd::TierName(t);
      EXPECT_EQ(dz32, want_dz32) << simd::TierName(t);
      EXPECT_EQ(dcp32, want_dcp32) << simd::TierName(t);
    }
  }
}

}  // namespace
}  // namespace dbaugur::nn

// Tests for the SQL tokenizer and SQL2Template (including the paper's
// semantic-equivalence examples).

#include <gtest/gtest.h>

#include <string>

#include "sql/templater.h"
#include "sql/tokenizer.h"

namespace dbaugur::sql {
namespace {

TEST(TokenizerTest, BasicSelect) {
  auto toks = Tokenize("SELECT * FROM Stu WHERE id=5");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 8u);
  EXPECT_EQ((*toks)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[3].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[3].text, "stu");  // identifiers lowercased
  EXPECT_EQ((*toks)[7].type, TokenType::kNumber);
}

TEST(TokenizerTest, KeywordsCaseInsensitive) {
  auto toks = Tokenize("select a fRoM b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[2].text, "FROM");
}

TEST(TokenizerTest, StringsWithEscapes) {
  auto toks = Tokenize("SELECT * FROM t WHERE name = 'O''Brien'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->back().type, TokenType::kString);
  EXPECT_EQ(toks->back().text, "'O''Brien'");
}

TEST(TokenizerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(TokenizerTest, NumbersDecimalAndScientific) {
  auto toks = Tokenize("SELECT 1 , 2.5 , 3e4 , .5");
  ASSERT_TRUE(toks.ok());
  int numbers = 0;
  for (const auto& t : *toks) {
    if (t.type == TokenType::kNumber) ++numbers;
  }
  EXPECT_EQ(numbers, 4);
}

TEST(TokenizerTest, CommentsStripped) {
  auto toks = Tokenize("SELECT a -- trailing comment\nFROM t /* block */ WHERE b = 1");
  ASSERT_TRUE(toks.ok());
  for (const auto& t : *toks) {
    EXPECT_EQ(t.text.find("comment"), std::string::npos);
  }
  EXPECT_EQ((*toks)[2].text, "FROM");
}

TEST(TokenizerTest, UnterminatedBlockCommentRejected) {
  EXPECT_FALSE(Tokenize("SELECT a /* oops").ok());
}

TEST(TokenizerTest, QualifiedIdentifiers) {
  auto toks = Tokenize("SELECT a.id FROM a JOIN b ON a.id = b.id");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "a.id");
  EXPECT_EQ((*toks)[1].type, TokenType::kIdentifier);
}

TEST(TokenizerTest, MultiCharOperators) {
  auto toks = Tokenize("SELECT * FROM t WHERE a <= 1 AND b <> 2 AND c != 3");
  ASSERT_TRUE(toks.ok());
  int ops = 0;
  for (const auto& t : *toks) {
    if (t.type == TokenType::kOperator && t.text.size() == 2) ++ops;
  }
  EXPECT_EQ(ops, 3);
}

TEST(TokenizerTest, UnexpectedCharacterRejected) {
  EXPECT_FALSE(Tokenize("SELECT @ FROM t").ok());
}

TEST(TemplateTest, PaperExampleLiteralReplacement) {
  // "SELECT * FROM Stu WHERE id=5 and age>21 and height<180" from §IV-A.
  auto t = ToTemplate("SELECT * FROM Stu WHERE id=5 and age>21 and height<180");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->find("5"), std::string::npos);
  EXPECT_EQ(t->find("21"), std::string::npos);
  EXPECT_EQ(t->find("180"), std::string::npos);
  EXPECT_NE(t->find("?"), std::string::npos);
}

TEST(TemplateTest, WhitespaceAndCaseNormalized) {
  auto a = ToTemplate("SELECT  *   FROM stu WHERE id = 7");
  auto b = ToTemplate("select * from STU where ID=123");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, PaperExampleColumnOrder) {
  // "SELECT a, b FROM foo" == "SELECT b, a FROM foo" (paper §IV-A).
  auto a = ToTemplate("SELECT a, b FROM foo");
  auto b = ToTemplate("SELECT b, a FROM foo");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, PaperExampleJoinOrder) {
  // "SELECT * FROM A JOIN B ON A.id=B.id" == "... FROM B JOIN A ON B.id=A.id".
  auto a = ToTemplate("SELECT * FROM A JOIN B on A.id=B.id");
  auto b = ToTemplate("SELECT * FROM B JOIN A on B.id=A.id");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, CommutativePredicateOperands) {
  auto a = ToTemplate("SELECT * FROM t WHERE 5 = id");
  auto b = ToTemplate("SELECT * FROM t WHERE id = 5");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, FlippedInequalityOperands) {
  auto a = ToTemplate("SELECT * FROM t WHERE 21 < age");
  auto b = ToTemplate("SELECT * FROM t WHERE age > 21");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, AndTermOrderNormalized) {
  auto a = ToTemplate("SELECT * FROM t WHERE age > 21 AND id = 5");
  auto b = ToTemplate("SELECT * FROM t WHERE id = 5 AND age > 21");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, OrTermsNotReordered) {
  // Reordering around OR is unsafe with mixed AND/OR; must stay distinct
  // exactly as written.
  auto a = ToTemplate("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  auto b = ToTemplate("SELECT * FROM t WHERE b = 2 AND c = 3 OR a = 1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(TemplateTest, InListCollapsed) {
  auto a = ToTemplate("SELECT * FROM t WHERE id IN (1, 2, 3)");
  auto b = ToTemplate("SELECT * FROM t WHERE id IN (7)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, InListCollapseCanBeDisabled) {
  TemplateOptions opts;
  opts.collapse_in_lists = false;
  auto a = ToTemplate("SELECT * FROM t WHERE id IN (1, 2, 3)", opts);
  auto b = ToTemplate("SELECT * FROM t WHERE id IN (7)", opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(TemplateTest, TrailingSemicolonIgnored) {
  auto a = ToTemplate("SELECT * FROM t;");
  auto b = ToTemplate("SELECT * FROM t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, DifferentTablesStayDistinct) {
  auto a = ToTemplate("SELECT * FROM t1 WHERE id = 1");
  auto b = ToTemplate("SELECT * FROM t2 WHERE id = 1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(TemplateTest, UpdateStatements) {
  auto a = ToTemplate("UPDATE t SET x = 1.5, y = 2 WHERE id = 10");
  auto b = ToTemplate("UPDATE t SET x = 9.9, y = 8 WHERE id = 33");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TemplateTest, EmptyStatementRejected) {
  EXPECT_FALSE(ToTemplate("").ok());
  EXPECT_FALSE(ToTemplate("   ").ok());
}

TEST(FingerprintTest, StableAndDiscriminating) {
  EXPECT_EQ(Fingerprint("abc"), Fingerprint("abc"));
  EXPECT_NE(Fingerprint("abc"), Fingerprint("abd"));
  EXPECT_NE(Fingerprint(""), Fingerprint("a"));
}

TEST(RegistryTest, CountsAndFrequencyOrder) {
  TemplateRegistry reg;
  for (int i = 0; i < 5; ++i) {
    auto id = reg.Record("SELECT * FROM a WHERE id = " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 0u);
  }
  for (int i = 0; i < 2; ++i) {
    auto id = reg.Record("SELECT * FROM b WHERE id = " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 1u);
  }
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.count(0), 5);
  EXPECT_EQ(reg.count(1), 2);
  auto order = reg.ByFrequency();
  EXPECT_EQ(order[0], 0u);
  auto found = reg.Lookup(reg.template_text(1));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1u);
  EXPECT_FALSE(reg.Lookup("SELECT nothing").ok());
}

// --- hardening against malformed / truncated / binary-garbage input ---------

TEST(TokenizerHardeningTest, RejectsControlBytesWithHexDiagnostics) {
  std::string sql = "SELECT ";
  sql += '\x01';
  sql += " FROM t";
  auto toks = Tokenize(sql);
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("0x01"), std::string::npos)
      << toks.status().message();
}

TEST(TokenizerHardeningTest, RejectsEmbeddedNulByte) {
  std::string sql = "SELECT ";
  sql += '\0';  // a torn write, not a terminator
  sql += "FROM tickets";
  auto toks = Tokenize(sql);
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("0x00"), std::string::npos)
      << toks.status().message();
}

TEST(TokenizerHardeningTest, RejectsNulInsideStringLiteral) {
  std::string sql = "SELECT * FROM t WHERE note = 'a";
  sql += '\0';
  sql += "b'";
  auto toks = Tokenize(sql);
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("NUL"), std::string::npos)
      << toks.status().message();
}

TEST(TokenizerHardeningTest, RejectsDeleteAndHighBytes) {
  std::string del = "SELECT a";
  del += '\x7F';
  EXPECT_FALSE(Tokenize(del).ok());
  // Bytes >= 0x80 are "unexpected", reported hex-escaped instead of echoing
  // raw binary into logs.
  std::string high = "SELECT ";
  high += static_cast<char>(0xC3);
  auto toks = Tokenize(high);
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("0xC3"), std::string::npos)
      << toks.status().message();
}

TEST(TokenizerHardeningTest, TabsAndNewlinesAreStillWhitespace) {
  auto toks = Tokenize("SELECT\ta\nFROM\r\nb");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].text, "FROM");
}

TEST(TokenizerHardeningTest, TruncatedStatementsRejectCleanly) {
  EXPECT_FALSE(Tokenize("SELECT * FROM t WHERE name = 'truncat").ok());
  EXPECT_FALSE(Tokenize("SELECT * FROM t /* cut mid-comment").ok());
  EXPECT_FALSE(Tokenize("SELECT @@rowcount").ok());
}

}  // namespace
}  // namespace dbaugur::sql

// Negative-compile fixture: MUST FAIL to build under
// -Wthread-safety -Werror=thread-safety (Clang). The guarded counter is
// written without holding its mutex; if this file ever compiles under the
// thread-safety gate, the gate is not wired and the CMake check errors out.
//
// Excluded from the *_test.cpp glob on purpose — it is compiled only by the
// try_compile probe in tests/CMakeLists.txt.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {  // missing DBAUGUR_REQUIRES(mu_) / MutexLock: a race
    ++value_;
  }

 private:
  dbaugur::Mutex mu_;
  int value_ DBAUGUR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}

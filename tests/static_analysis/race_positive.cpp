// Positive control for the negative-compile probe: same shape as
// race_negative.cpp but correctly locked, so it MUST COMPILE under
// -Wthread-safety -Werror=thread-safety. If this one fails, the probe
// toolchain is broken (wrong include path, wrong flags) rather than the gate
// working — the CMake check distinguishes the two.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() DBAUGUR_EXCLUDES(mu_) {
    dbaugur::MutexLock lock(&mu_);
    ++value_;
  }

 private:
  dbaugur::Mutex mu_;
  int value_ DBAUGUR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}

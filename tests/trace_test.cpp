// Tests for query-log parsing, trace extraction, and resource binning.

#include <gtest/gtest.h>

#include <string>

#include "trace/extractor.h"
#include "workloads/query_log.h"

namespace dbaugur::trace {
namespace {

TEST(TimestampTest, EpochSeconds) {
  auto t = ParseTimestamp("1480413600");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 1480413600);
}

TEST(TimestampTest, IsoDateTime) {
  auto t = ParseTimestamp("1970-01-01 00:01:40");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 100);
  auto t2 = ParseTimestamp("1970-01-02T00:00:00");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, 86400);
}

TEST(TimestampTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("yesterday").ok());
  EXPECT_FALSE(ParseTimestamp("").ok());
  EXPECT_FALSE(ParseTimestamp("2016-13-40 99:00:00").ok());
}

TEST(ParseQueryLogTest, MixedFormats) {
  std::string log =
      "100 SELECT * FROM t WHERE id = 1\n"
      "\n"
      "1970-01-01 00:02:00 SELECT * FROM t WHERE id = 2\n"
      "1970-01-01T00:03:00 UPDATE t SET x = 5 WHERE id = 3\n";
  auto entries = ParseQueryLog(log);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].timestamp, 100);
  EXPECT_EQ((*entries)[1].timestamp, 120);
  EXPECT_EQ((*entries)[2].timestamp, 180);
  EXPECT_EQ((*entries)[2].sql.substr(0, 6), "UPDATE");
}

TEST(ParseQueryLogTest, BadLineReportsLineNumber) {
  auto entries = ParseQueryLog("100 SELECT 1\nnot-a-line\n");
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.status().message().find("line 2"), std::string::npos);
}

TEST(TraceExtractorTest, BinsPerTemplate) {
  ExtractionOptions opts;
  opts.interval_seconds = 60;
  TraceExtractor ex(opts);
  // Template A at t=0,30 (bin 0) and t=70 (bin 1); template B at t=130 (bin 2).
  ASSERT_TRUE(ex.Ingest({0, "SELECT * FROM a WHERE id = 1"}).ok());
  ASSERT_TRUE(ex.Ingest({30, "SELECT * FROM a WHERE id = 9"}).ok());
  ASSERT_TRUE(ex.Ingest({70, "SELECT * FROM a WHERE id = 2"}).ok());
  ASSERT_TRUE(ex.Ingest({130, "SELECT * FROM b WHERE id = 3"}).ok());
  auto traces = ex.TemplateTraces();
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->size(), 2u);
  const auto& a = (*traces)[0];
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  const auto& b = (*traces)[1];
  EXPECT_DOUBLE_EQ(b[2], 1.0);
  EXPECT_EQ(a.interval_seconds(), 60);
  auto total = ex.TotalTrace();
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ((*total)[0], 2.0);
  EXPECT_DOUBLE_EQ((*total)[2], 1.0);
}

TEST(TraceExtractorTest, SimilarStatementsShareTemplate) {
  ExtractionOptions opts;
  opts.interval_seconds = 60;
  TraceExtractor ex(opts);
  ASSERT_TRUE(ex.Ingest({0, "SELECT a, b FROM foo"}).ok());
  ASSERT_TRUE(ex.Ingest({10, "SELECT b, a FROM foo"}).ok());
  EXPECT_EQ(ex.registry().size(), 1u);
}

TEST(TraceExtractorTest, EmptyExtractorFails) {
  TraceExtractor ex(ExtractionOptions{});
  EXPECT_FALSE(ex.TemplateTraces().ok());
  EXPECT_FALSE(ex.TotalTrace().ok());
}

TEST(TraceExtractorTest, RejectsBadInterval) {
  ExtractionOptions opts;
  opts.interval_seconds = 0;
  TraceExtractor ex(opts);
  EXPECT_FALSE(ex.Ingest({0, "SELECT 1 FROM t"}).ok());
}

TEST(BinResourceSamplesTest, AveragesWithinBins) {
  std::vector<ResourceSample> samples = {
      {0, 0.2}, {30, 0.4}, {70, 0.6}, {200, 0.8}};
  auto s = BinResourceSamples(samples, 60, "cpu");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 4u);
  EXPECT_DOUBLE_EQ((*s)[0], 0.3);   // (0.2+0.4)/2
  EXPECT_DOUBLE_EQ((*s)[1], 0.6);
  EXPECT_DOUBLE_EQ((*s)[2], 0.6);   // gap carries previous value
  EXPECT_DOUBLE_EQ((*s)[3], 0.8);
  EXPECT_EQ(s->name(), "cpu");
}

TEST(BinResourceSamplesTest, Validation) {
  EXPECT_FALSE(BinResourceSamples({}, 60).ok());
  EXPECT_FALSE(BinResourceSamples({{0, 1.0}}, 0).ok());
}

TEST(QueryLogGeneratorTest, ProducesOrderedParsableLog) {
  workloads::QueryLogOptions opts;
  opts.days = 1;
  opts.seed = 5;
  auto log = workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), opts);
  ASSERT_GT(log.size(), 1000u);
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].timestamp, log[i].timestamp);
  }
  // Every generated statement must survive SQL2Template.
  ExtractionOptions eopts;
  eopts.interval_seconds = 600;
  TraceExtractor ex(eopts);
  ASSERT_TRUE(ex.IngestLog(log).ok());
  // Six specs => six templates (literals differ per statement).
  EXPECT_EQ(ex.registry().size(), 6u);
  auto traces = ex.TemplateTraces();
  ASSERT_TRUE(traces.ok());
  EXPECT_EQ((*traces)[0].size(), 144u);  // 1 day at 10-minute bins
}

TEST(QueryLogGeneratorTest, EveningTemplatesPeakInEvening) {
  workloads::QueryLogOptions opts;
  opts.days = 2;
  opts.seed = 6;
  auto specs = workloads::BusTrackerTemplates();
  auto log = workloads::GenerateQueryLog(specs, opts);
  // Count ticket-price queries by half of day.
  size_t morning = 0, evening = 0;
  for (const auto& e : log) {
    if (e.sql.find("price") == std::string::npos) continue;
    int64_t sec_of_day = e.timestamp % 86400;
    if (sec_of_day < 43200) {
      ++morning;
    } else {
      ++evening;
    }
  }
  EXPECT_GT(evening, morning * 3);
}

// --- hardening: lenient log parsing and per-class rejection counters ---------

TEST(TimestampTest, OverflowingDigitStringRejectedCleanly) {
  auto ts = ParseTimestamp("99999999999999999999999");
  ASSERT_FALSE(ts.ok());
  EXPECT_NE(ts.status().message().find("out of range"), std::string::npos)
      << ts.status().message();
  // Near the boundary: INT64_MAX parses, one more digit does not.
  EXPECT_TRUE(ParseTimestamp("9223372036854775807").ok());
  EXPECT_FALSE(ParseTimestamp("92233720368547758070").ok());
}

TEST(ParseQueryLogLenientTest, CountsEachRejectionClass) {
  const std::string text =
      "100 SELECT * FROM a\n"
      "101\n"                                        // no SQL after timestamp
      "not-a-time SELECT * FROM b\n"                 // bad timestamp
      "####42\n"                                     // one junk token
      "99999999999999999999999 SELECT * FROM c\n"    // overflowing timestamp
      "102 SELECT * FROM d\n"
      "\n";                                          // blank lines are fine
  ParsedQueryLog parsed = ParseQueryLogLenient(text);
  EXPECT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.rejected.no_sql, 2u);
  EXPECT_EQ(parsed.rejected.bad_timestamp, 2u);
  EXPECT_EQ(parsed.rejected.total(), 4u);
  EXPECT_EQ(parsed.first_bad_line, 2u);
  EXPECT_NE(parsed.first_error.find("log line 2"), std::string::npos)
      << parsed.first_error;
  EXPECT_EQ(parsed.entries[0].timestamp, 100);
  EXPECT_EQ(parsed.entries[1].timestamp, 102);
}

TEST(ParseQueryLogLenientTest, CleanLogHasNoRejections) {
  ParsedQueryLog parsed =
      ParseQueryLogLenient("100 SELECT 1\n2024-01-02 03:04:05 SELECT 2\n");
  EXPECT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.rejected.total(), 0u);
  EXPECT_EQ(parsed.first_bad_line, 0u);
  EXPECT_TRUE(parsed.first_error.empty());
}

TEST(ParseQueryLogTest, StrictParseFailsWithTheFirstLenientError) {
  const std::string text = "100 SELECT 1\nbogus SELECT 2\n";
  auto strict = ParseQueryLog(text);
  ASSERT_FALSE(strict.ok());
  ParsedQueryLog lenient = ParseQueryLogLenient(text);
  EXPECT_EQ(strict.status().message(), lenient.first_error);
}

TEST(TraceExtractorTest, IngestLenientCountsRejectedStatements) {
  TraceExtractor ex(ExtractionOptions{});
  EXPECT_TRUE(ex.IngestLenient({0, "SELECT * FROM t WHERE id = 1"}));
  std::string nul_sql = "SELECT ";
  nul_sql += '\0';
  nul_sql += "FROM t";
  EXPECT_FALSE(ex.IngestLenient({10, nul_sql}));
  EXPECT_FALSE(ex.IngestLenient({20, "SELECT 'truncat"}));
  EXPECT_TRUE(ex.IngestLenient({30, "SELECT * FROM t WHERE id = 2"}));
  EXPECT_EQ(ex.entry_count(), 2u);
  EXPECT_EQ(ex.rejected_statements(), 2u);
  EXPECT_EQ(ex.registry().size(), 1u);  // both good statements share a template
}

}  // namespace
}  // namespace dbaugur::trace

// Unit tests for src/ts: Series, metrics, scalers, window datasets.

#include <gtest/gtest.h>

#include <cmath>

#include "ts/metrics.h"
#include "ts/scaler.h"
#include "ts/series.h"
#include "ts/window_dataset.h"

namespace dbaugur::ts {
namespace {

TEST(SeriesTest, BasicAccessors) {
  Series s(1000, 60, {1, 2, 3}, "q0");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.start(), 1000);
  EXPECT_EQ(s.interval_seconds(), 60);
  EXPECT_EQ(s.name(), "q0");
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_EQ(s.TimeAt(2), 1120);
}

TEST(SeriesTest, SliceKeepsTimestamps) {
  Series s(0, 10, {0, 1, 2, 3, 4});
  Series sub = s.Slice(2, 4);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.start(), 20);
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
}

TEST(SeriesTest, SliceClampsOutOfRange) {
  Series s(0, 10, {0, 1, 2});
  EXPECT_EQ(s.Slice(5, 9).size(), 0u);
  EXPECT_EQ(s.Slice(2, 1).size(), 0u);
  EXPECT_EQ(s.Slice(1, 99).size(), 2u);
}

TEST(SeriesTest, AggregateSum) {
  Series s(0, 60, {1, 2, 3, 4, 5});
  auto agg = s.AggregateSum(2);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->size(), 2u);  // trailing partial dropped
  EXPECT_DOUBLE_EQ((*agg)[0], 3.0);
  EXPECT_DOUBLE_EQ((*agg)[1], 7.0);
  EXPECT_EQ(agg->interval_seconds(), 120);
}

TEST(SeriesTest, AggregateMean) {
  Series s(0, 60, {2, 4, 6, 8});
  auto agg = s.AggregateMean(2);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ((*agg)[0], 3.0);
  EXPECT_DOUBLE_EQ((*agg)[1], 7.0);
}

TEST(SeriesTest, AggregateZeroFactorFails) {
  Series s(0, 60, {1, 2});
  EXPECT_FALSE(s.AggregateSum(0).ok());
}

TEST(SeriesTest, SumAndAverage) {
  std::vector<Series> traces = {Series(0, 60, {1, 2}), Series(0, 60, {3, 4})};
  auto sum = Series::Sum(traces);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)[0], 4.0);
  auto avg = Series::Average(traces);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ((*avg)[1], 3.0);
}

TEST(SeriesTest, SumLengthMismatchFails) {
  std::vector<Series> traces = {Series(0, 60, {1, 2}), Series(0, 60, {3})};
  EXPECT_FALSE(Series::Sum(traces).ok());
  EXPECT_FALSE(Series::Sum({}).ok());
}

TEST(SeriesTest, DifferenceAndUndifference) {
  std::vector<double> v = {1, 3, 6, 10};
  auto d1 = Difference(v, 1);
  ASSERT_EQ(d1.size(), 3u);
  EXPECT_DOUBLE_EQ(d1[0], 2.0);
  EXPECT_DOUBLE_EQ(d1[2], 4.0);
  auto d2 = Difference(v, 2);
  ASSERT_EQ(d2.size(), 2u);
  EXPECT_DOUBLE_EQ(d2[0], 1.0);
  EXPECT_DOUBLE_EQ(UndifferenceStep(4.0, 10.0), 14.0);
}

TEST(MetricsTest, MseMaeRmse) {
  std::vector<double> p = {1, 2, 3};
  std::vector<double> a = {1, 4, 3};
  auto mse = MSE(p, a);
  ASSERT_TRUE(mse.ok());
  EXPECT_NEAR(*mse, 4.0 / 3.0, 1e-12);
  auto mae = MAE(p, a);
  ASSERT_TRUE(mae.ok());
  EXPECT_NEAR(*mae, 2.0 / 3.0, 1e-12);
  auto rmse = RMSE(p, a);
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(MetricsTest, PerfectForecastIsZero) {
  std::vector<double> v = {5, 6, 7};
  EXPECT_DOUBLE_EQ(*MSE(v, v), 0.0);
  EXPECT_DOUBLE_EQ(*SMAPE(v, v), 0.0);
}

TEST(MetricsTest, ShapeErrors) {
  EXPECT_FALSE(MSE({1}, {1, 2}).ok());
  EXPECT_FALSE(MSE({}, {}).ok());
}

TEST(ScalerTest, MinMaxRoundTrip) {
  MinMaxScaler s;
  ASSERT_TRUE(s.Fit({2, 4, 10}).ok());
  EXPECT_DOUBLE_EQ(s.Transform(2), 0.0);
  EXPECT_DOUBLE_EQ(s.Transform(10), 1.0);
  EXPECT_DOUBLE_EQ(s.Inverse(s.Transform(7.3)), 7.3);
}

TEST(ScalerTest, MinMaxConstantSeries) {
  MinMaxScaler s;
  ASSERT_TRUE(s.Fit({5, 5, 5}).ok());
  EXPECT_DOUBLE_EQ(s.Transform(5), 0.5);
  EXPECT_DOUBLE_EQ(s.Inverse(0.5), 5.0);
}

TEST(ScalerTest, MinMaxEmptyFails) {
  MinMaxScaler s;
  EXPECT_FALSE(s.Fit({}).ok());
}

TEST(ScalerTest, StandardRoundTrip) {
  StandardScaler s;
  ASSERT_TRUE(s.Fit({1, 2, 3, 4}).ok());
  EXPECT_NEAR(s.Transform(2.5), 0.0, 1e-12);
  EXPECT_NEAR(s.Inverse(s.Transform(3.7)), 3.7, 1e-12);
}

TEST(ScalerTest, StandardConstantSeriesSafe) {
  StandardScaler s;
  ASSERT_TRUE(s.Fit({3, 3, 3}).ok());
  EXPECT_DOUBLE_EQ(s.Transform(3), 0.0);
}

TEST(WindowDatasetTest, ShapesAndTargets) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5};
  auto ws = MakeWindows(v, {3, 2, 1});
  ASSERT_TRUE(ws.ok());
  // Windows [0,1,2]->4, [1,2,3]->5.
  ASSERT_EQ(ws->size(), 2u);
  EXPECT_DOUBLE_EQ((*ws)[0].target, 4.0);
  EXPECT_EQ((*ws)[0].target_index, 4u);
  EXPECT_DOUBLE_EQ((*ws)[1].window[0], 1.0);
  EXPECT_DOUBLE_EQ((*ws)[1].target, 5.0);
}

TEST(WindowDatasetTest, StrideSkipsWindows) {
  std::vector<double> v(10);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto ws = MakeWindows(v, {3, 1, 2});
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 4u);
  EXPECT_DOUBLE_EQ((*ws)[1].window[0], 2.0);
}

TEST(WindowDatasetTest, DegenerateOptionsFail) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_FALSE(MakeWindows(v, {0, 1, 1}).ok());
  EXPECT_FALSE(MakeWindows(v, {2, 0, 1}).ok());
  EXPECT_FALSE(MakeWindows(v, {2, 1, 0}).ok());
  EXPECT_FALSE(MakeWindows(v, {4, 1, 1}).ok());
}

TEST(WindowDatasetTest, TrainTestSplit) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> train, test;
  TrainTestSplit(v, 0.7, &train, &test);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_DOUBLE_EQ(test[0], 7.0);
}

TEST(WindowDatasetTest, SplitClampsFraction) {
  std::vector<double> v = {1, 2};
  std::vector<double> train, test;
  TrainTestSplit(v, 1.5, &train, &test);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_TRUE(test.empty());
  TrainTestSplit(v, -0.5, &train, &test);
  EXPECT_TRUE(train.empty());
}

}  // namespace
}  // namespace dbaugur::ts

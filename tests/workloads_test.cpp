// Tests that the synthetic workload generators reproduce the shape
// properties the paper's evaluation depends on (DESIGN.md §3).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_utils.h"
#include "workloads/generators.h"

namespace dbaugur::workloads {
namespace {

// Autocorrelation of v at the given lag.
double Autocorrelation(const std::vector<double>& v, size_t lag) {
  double mean = Mean(v);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i + lag < v.size(); ++i) {
    num += (v[i] - mean) * (v[i + lag] - mean);
  }
  for (double x : v) den += (x - mean) * (x - mean);
  return den > 0 ? num / den : 0.0;
}

TEST(BusTrackerGenTest, DeterministicInSeed) {
  BusTrackerOptions opts;
  opts.days = 2;
  auto a = GenerateBusTracker(opts);
  auto b = GenerateBusTracker(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(BusTrackerGenTest, OneDayCyclicPattern) {
  BusTrackerOptions opts;
  opts.days = 14;
  auto s = GenerateBusTracker(opts);
  size_t day = 1440;  // per-minute samples
  EXPECT_EQ(s.size(), 14u * day);
  // Fig. 2a: "roughly follows a one-day cyclic pattern". Evaluate at the
  // 10-minute aggregation the experiments use, which suppresses the
  // per-minute Poisson noise.
  auto agg = s.AggregateSum(10);
  ASSERT_TRUE(agg.ok());
  // The paper says "roughly follows a one-day cyclic pattern" with "various
  // sudden crests and troughs" — those bursts intentionally depress the
  // day-lag autocorrelation, so require a clear but not pristine cycle.
  double day_ac = Autocorrelation(agg->values(), 144);
  double off_ac = Autocorrelation(agg->values(), 48);
  EXPECT_GT(day_ac, 0.35);
  EXPECT_GT(day_ac, 2.0 * off_ac);
}

TEST(BusTrackerGenTest, WeekendsQuieter) {
  BusTrackerOptions opts;
  opts.days = 14;
  auto s = GenerateBusTracker(opts);
  size_t day = 1440;
  double weekday_sum = 0, weekend_sum = 0;
  size_t wd = 0, we = 0;
  for (size_t d = 0; d < 14; ++d) {
    double sum = 0;
    for (size_t i = 0; i < day; ++i) sum += s[d * day + i];
    if (d % 7 >= 5) {
      weekend_sum += sum;
      ++we;
    } else {
      weekday_sum += sum;
      ++wd;
    }
  }
  EXPECT_LT(weekend_sum / static_cast<double>(we),
            0.8 * weekday_sum / static_cast<double>(wd));
}

TEST(BusTrackerGenTest, HasCrestsAndTroughs) {
  BusTrackerOptions opts;
  opts.days = 7;
  auto s = GenerateBusTracker(opts);
  // Sudden bursts: some samples far above the local daily profile.
  double mean = Mean(s.values());
  double mx = *std::max_element(s.values().begin(), s.values().end());
  EXPECT_GT(mx, 3.0 * mean);
}

TEST(AlibabaGenTest, UtilizationBounded) {
  AlibabaOptions opts;
  auto s = GenerateAlibabaDisk(opts);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s[i], 0.0);
    EXPECT_LE(s[i], 1.0);
  }
  EXPECT_EQ(s.size(), 6u * 288u);  // 6 days at 5-minute samples
}

TEST(AlibabaGenTest, GoodLocalLinearity) {
  // §VI-B: "Alibaba Cluster Trace has good local linearity" — strong lag-1
  // autocorrelation, much stronger than BusTracker's per-minute counts show
  // relative to their noise.
  auto s = GenerateAlibabaDisk(AlibabaOptions{});
  EXPECT_GT(Autocorrelation(s.values(), 1), 0.85);
}

TEST(AlibabaGenTest, HasBursts) {
  auto s = GenerateAlibabaDisk(AlibabaOptions{});
  double mean = Mean(s.values());
  double sd = StdDev(s.values());
  size_t spikes = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] > mean + 3 * sd) ++spikes;
  }
  EXPECT_GT(spikes, 0u);
}

TEST(PeriodicGenTest, StrongPeriodicity) {
  PeriodicOptions opts;
  auto s = GeneratePeriodic(opts);
  EXPECT_EQ(s.size(), opts.periods * opts.steps_per_period);
  EXPECT_GT(Autocorrelation(s.values(), opts.steps_per_period), 0.9);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_GE(s[i], 0.0);
}

TEST(ComplexGenTest, TrendPresent) {
  ComplexOptions opts;
  opts.days = 30;
  auto s = GenerateComplex(opts);
  // First-third mean < last-third mean thanks to the linear trend.
  size_t third = s.size() / 3;
  double first = 0, last = 0;
  for (size_t i = 0; i < third; ++i) first += s[i];
  for (size_t i = s.size() - third; i < s.size(); ++i) last += s[i];
  EXPECT_GT(last, first * 1.15);
}

TEST(ComplexGenTest, WeekdayFactorVisible) {
  ComplexOptions opts;
  opts.days = 28;
  opts.holiday_prob = 0.0;
  opts.noise_sd = 0.0;
  auto s = GenerateComplex(opts);
  double weekday = 0, weekend = 0;
  size_t wd = 0, we = 0;
  for (size_t d = 0; d < opts.days; ++d) {
    double sum = 0;
    for (size_t i = 0; i < opts.steps_per_day; ++i) {
      sum += s[d * opts.steps_per_day + i];
    }
    if (d % 7 < 5) {
      weekday += sum;
      ++wd;
    } else {
      weekend += sum;
      ++we;
    }
  }
  EXPECT_GT(weekday / static_cast<double>(wd),
            1.1 * weekend / static_cast<double>(we));
}

TEST(WarpedFamilyGenTest, MembersShareShapeUpToWarp) {
  WarpedFamilyOptions opts;
  opts.members = 5;
  opts.noise_sd = 0.0;
  opts.amp_low = opts.amp_high = 1.0;
  auto fam = GenerateWarpedFamily(opts);
  ASSERT_EQ(fam.size(), 5u);
  // Each pair correlates strongly at the right lag; with shifts <= 6 the
  // zero-lag correlation can be mediocre, but never anti-correlated.
  for (size_t i = 1; i < fam.size(); ++i) {
    EXPECT_GT(PearsonCorrelation(fam[0].values(), fam[i].values()), -0.2);
  }
}

}  // namespace
}  // namespace dbaugur::workloads

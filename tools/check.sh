#!/usr/bin/env bash
# One-command correctness gate for DBAugur. Builds and tests the tree under:
#   1. Release            (-O2 -DNDEBUG — proves DBAUGUR_CHECK survives NDEBUG)
#   2. ASan + UBSan       (-fno-sanitize-recover=all, DCHECKs forced on)
#   2b. Fault injection   (serve_fault suite re-run under ASan with a
#                          DBAUGUR_FAULT_SPEC storm armed from the environment)
#   2c. Chaos harness     (end-to-end chaos slice re-run under ASan with a
#                          fault storm armed, plus bench/chaos_soak --smoke)
#   2d. Hang-storm smoke  (watchdog cancellation / degraded-stale / overload
#                          slice re-run explicitly under ASan)
#   3. TSan               (skipped with a warning if the toolchain lacks it)
#   3b. Workers stress    (serve_workers suite repeated under TSan — worker
#                          pool, watchdog, checkpoint-vs-cancel races)
#   4. clang-tidy on src/ (skipped with a warning if clang-tidy is absent)
#   5. thread-safety      (clang++ build with -Werror=thread-safety checking
#                          the DBAUGUR_GUARDED_BY annotations; skipped with a
#                          warning if no clang++ — set DBAUGUR_CLANG to point
#                          at one explicitly)
#   6. lint               (tools/lint.py project invariants + its self-tests;
#                          skipped with a warning if python3 is absent)
#
# Every future perf PR must pass this script before landing (see ROADMAP.md).
#
# Usage: tools/check.sh [--fast]
#   --fast  skip the chaos stage, TSan, clang-tidy, thread-safety and lint
#           (inner-loop use; CI runs the full set)
set -uo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

declare -a RESULTS=()
FAILED=0

note() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }
record() { RESULTS+=("$1: $2"); [[ "$2" == FAIL* ]] && FAILED=1; }

# build_and_test <name> <builddir> <extra cmake args...>
build_and_test() {
  local name="$1" dir="$2"
  shift 2
  note "$name: configure + build ($dir)"
  if ! cmake -B "$dir" -S . "$@" > "$dir.configure.log" 2>&1; then
    tail -30 "$dir.configure.log"
    record "$name" "FAIL (configure)"
    return 1
  fi
  if ! cmake --build "$dir" -j "$JOBS" > "$dir.build.log" 2>&1; then
    grep -E 'error|Error' "$dir.build.log" | head -30
    record "$name" "FAIL (build)"
    return 1
  fi
  note "$name: ctest"
  # Explicit --timeout so a deadlocked thread-pool test fails loudly instead
  # of hanging the whole gate (sanitizer trees run far slower than Release).
  if ! ctest --test-dir "$dir" --output-on-failure -j "$JOBS" --timeout 600; then
    record "$name" "FAIL (tests)"
    return 1
  fi
  record "$name" "OK"
}

# --- 1. Release: the configuration users actually run. -----------------------
build_and_test "release" build-release -DCMAKE_BUILD_TYPE=Release

# --- 1b. NN kernel bench smoke: the fused-GEMM fast path must run end to end
# and emit valid JSON (full numbers are committed as BENCH_nn_kernels.json).
# Runs twice: once on the host's best SIMD tier, once with DBAUGUR_SIMD=off so
# the forced-scalar dispatch path stays exercised end to end.
if [[ -x build-release/bench/nn_kernels ]]; then
  note "bench/nn_kernels --smoke (Release)"
  if ./build-release/bench/nn_kernels --smoke > /dev/null; then
    record "nn_kernels-smoke" "OK"
  else
    record "nn_kernels-smoke" "FAIL"
  fi
  note "bench/nn_kernels --smoke (Release, DBAUGUR_SIMD=off)"
  if DBAUGUR_SIMD=off ./build-release/bench/nn_kernels --smoke > /dev/null; then
    record "nn_kernels-smoke-scalar" "OK"
  else
    record "nn_kernels-smoke-scalar" "FAIL"
  fi
else
  record "nn_kernels-smoke" "SKIPPED (Release build failed)"
fi

# --- 1c. Serve bench smoke: the snapshot read path must complete reads while
# a retrain is in flight (the binary exits non-zero otherwise) and emit valid
# JSON (full numbers are committed as BENCH_serve_throughput.json).
if [[ -x build-release/bench/serve_throughput ]]; then
  note "bench/serve_throughput --smoke (Release)"
  if ./build-release/bench/serve_throughput --smoke > /dev/null; then
    record "serve_throughput-smoke" "OK"
  else
    record "serve_throughput-smoke" "FAIL"
  fi
else
  record "serve_throughput-smoke" "SKIPPED (Release build failed)"
fi

# --- 1d. Sharded-serve bench smoke: every shard of the ShardedForecastService
# must complete snapshot reads while its retrain cycle is in flight (the
# binary exits non-zero if any shard's reads stall) and emit valid JSON (full
# numbers are committed as BENCH_serve_scale.json).
if [[ -x build-release/bench/serve_scale ]]; then
  note "bench/serve_scale --smoke (Release)"
  if ./build-release/bench/serve_scale --smoke > /dev/null; then
    record "serve_scale-smoke" "OK"
  else
    record "serve_scale-smoke" "FAIL"
  fi
else
  record "serve_scale-smoke" "SKIPPED (Release build failed)"
fi

# --- 2. ASan + UBSan. --------------------------------------------------------
export UBSAN_OPTIONS="print_stacktrace=1:${UBSAN_OPTIONS:-}"
build_and_test "asan+ubsan" build-asan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBAUGUR_SANITIZE=address,undefined \
  -DDBAUGUR_ENABLE_DCHECKS=ON

# --- 2b. Fault injection under ASan: re-run the serve_fault suite with a
# deterministic fault storm armed via DBAUGUR_FAULT_SPEC. This exercises the
# env-gated chaos test (ServeFaultChaosTest, a GTEST_SKIP without the spec)
# and proves the injected-failure recovery paths are clean under the
# sanitizers, not just in Release. Single ctest invocation, 1-core friendly.
if [[ -f build-asan/CTestTestfile.cmake ]]; then
  note "fault injection (ASan): serve_fault suite with DBAUGUR_FAULT_SPEC armed"
  fault_spec='serve.retrain.build=at:0,2;serve.retrain.diverge=at:1;serve.ingest.corrupt=p:0.05:7'
  if DBAUGUR_FAULT_SPEC="$fault_spec" ctest --test-dir build-asan \
      --output-on-failure -j "$JOBS" --timeout 600 \
      -R 'FaultInjectionTest|BackoffTest|QuarantineTest|DegradedModeTest|CheckpointFaultTest|ServeFaultChaosTest'; then
    record "fault-injection" "OK"
  else
    record "fault-injection" "FAIL"
  fi
else
  record "fault-injection" "SKIPPED (ASan build failed)"
fi

# --- 2c. Chaos harness: the grammar-driven end-to-end slice (differential
# oracles, full-service resume equality, corpus replay) re-run under ASan with
# the same fault storm armed, plus the Release smoke matrix of the soak
# driver. Skipped by --fast — it overlaps the plain ASan ctest pass; the value
# here is the storm-armed rerun.
if [[ "$FAST" == 1 ]]; then
  record "chaos" "SKIPPED (--fast)"
else
  if [[ -f build-asan/CTestTestfile.cmake ]]; then
    note "chaos (ASan): e2e chaos slice with DBAUGUR_FAULT_SPEC armed"
    fault_spec='serve.retrain.build=at:0,2;serve.retrain.diverge=at:1;serve.ingest.corrupt=p:0.05:7'
    if DBAUGUR_FAULT_SPEC="$fault_spec" ctest --test-dir build-asan \
        --output-on-failure -j "$JOBS" --timeout 600 -R 'Chaos'; then
      record "chaos-asan" "OK"
    else
      record "chaos-asan" "FAIL"
    fi
  else
    record "chaos-asan" "SKIPPED (ASan build failed)"
  fi
  if [[ -x build-release/bench/chaos_soak ]]; then
    note "bench/chaos_soak --smoke (Release)"
    if ./build-release/bench/chaos_soak --smoke > /dev/null; then
      record "chaos-smoke" "OK"
    else
      record "chaos-smoke" "FAIL"
    fi
  else
    record "chaos-smoke" "SKIPPED (Release build failed)"
  fi
fi

# --- 2d. Hang-storm watchdog smoke under ASan: the deadline/cancellation
# slice — serve.retrain.hang|slow storms driving watchdog cancellation,
# degraded-stale serving, overload adaptation, and checkpoint-vs-cancel
# races. These tests arm their own storms via fault::Configure; running
# them by name keeps the recovery paths sanitizer-clean even if the
# broader -R patterns above drift.
if [[ "$FAST" == 1 ]]; then
  record "hang-storm-asan" "SKIPPED (--fast)"
elif [[ -f build-asan/CTestTestfile.cmake ]]; then
  note "hang-storm (ASan): watchdog cancellation + overload slice"
  if ctest --test-dir build-asan --output-on-failure -j "$JOBS" --timeout 600 \
      -R 'HangStorm|SlowStorm|SlowRetrain|Overload|SavesDuringCancelledRetrain|ShardLevelSaveRaces'; then
    record "hang-storm-asan" "OK"
  else
    record "hang-storm-asan" "FAIL"
  fi
else
  record "hang-storm-asan" "SKIPPED (ASan build failed)"
fi

# --- 3. TSan (if the toolchain supports it). ---------------------------------
if [[ "$FAST" == 1 ]]; then
  record "tsan" "SKIPPED (--fast)"
else
  tsan_probe="$(mktemp -d)"
  echo 'int main(){return 0;}' > "$tsan_probe/p.cpp"
  if "${CXX:-c++}" -fsanitize=thread "$tsan_probe/p.cpp" -o "$tsan_probe/p" \
      > /dev/null 2>&1 && "$tsan_probe/p"; then
    export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
    build_and_test "tsan" build-tsan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDBAUGUR_SANITIZE=thread \
      -DDBAUGUR_ENABLE_DCHECKS=ON
    # --- 3b. Concurrent-retrain stress: repeat the worker-pool, watchdog and
    # checkpoint-vs-cancel suites under the race detector. The plain ctest
    # pass above ran them once; the repeats shake out interleavings a single
    # run can miss (worker claim order, cancel-vs-publish, save-vs-cancel).
    if [[ -x build-tsan/tests/serve_workers_test ]]; then
      note "tsan: serve_workers stress (3 repeats)"
      if ./build-tsan/tests/serve_workers_test \
          --gtest_filter='RetrainWorkerPoolTest.*:WorkerDeterminismTest.*:ServeWorkersFaultTest.*' \
          --gtest_repeat=3 > /dev/null 2>&1; then
        record "tsan-workers-stress" "OK"
      else
        record "tsan-workers-stress" "FAIL"
      fi
    else
      record "tsan-workers-stress" "SKIPPED (TSan build failed)"
    fi
  else
    echo "WARNING: toolchain cannot link -fsanitize=thread; skipping TSan tree"
    record "tsan" "SKIPPED (unsupported toolchain)"
    record "tsan-workers-stress" "SKIPPED (unsupported toolchain)"
  fi
  rm -rf "$tsan_probe"
fi

# --- 4. clang-tidy over src/ (zero unsuppressed warnings required). ----------
if [[ "$FAST" == 1 ]]; then
  record "clang-tidy" "SKIPPED (--fast)"
elif command -v clang-tidy > /dev/null 2>&1; then
  note "clang-tidy over src/"
  # compile_commands.json comes from the Release tree (CMAKE_EXPORT_COMPILE_COMMANDS).
  mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
  if clang-tidy -p build-release --quiet "${tidy_sources[@]}"; then
    record "clang-tidy" "OK"
  else
    record "clang-tidy" "FAIL (warnings; fix or document a // NOLINT(check) with reason)"
  fi
else
  echo "WARNING: clang-tidy not found on PATH; skipping static analysis step"
  record "clang-tidy" "SKIPPED (not installed)"
fi

# --- 5. Thread-safety gate: clang++ build with -Werror=thread-safety. --------
# The DBAUGUR_GUARDED_BY / DBAUGUR_REQUIRES annotations (see
# src/common/thread_annotations.h) are only checked by Clang's capability
# analysis; GCC compiles them away. This stage proves the annotated tree is
# race-clean *at compile time* — and the tests/static_analysis negative-compile
# probe (run at configure) proves the gate itself rejects races.
if [[ "$FAST" == 1 ]]; then
  record "thread-safety" "SKIPPED (--fast)"
else
  CLANGXX="${DBAUGUR_CLANG:-}"
  if [[ -z "$CLANGXX" ]]; then
    for cand in clang++ clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
      if command -v "$cand" > /dev/null 2>&1; then CLANGXX="$cand"; break; fi
    done
  fi
  if [[ -n "$CLANGXX" ]] && command -v "$CLANGXX" > /dev/null 2>&1; then
    build_and_test "thread-safety" build-threadsafety \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER="$CLANGXX"
  else
    echo "WARNING: no clang++ on PATH (set DBAUGUR_CLANG=/path/to/clang++);"
    echo "         skipping the -Werror=thread-safety gate — the GUARDED_BY"
    echo "         annotations are NOT being checked in this run."
    record "thread-safety" "SKIPPED (clang++ not installed)"
  fi
fi

# --- 6. Project-invariant lint (tools/lint.py). ------------------------------
# Bans bare assert(), nondeterministic sources in src/, atomic<shared_ptr>,
# raw std:: sync primitives outside common/mutex.h, undocumented NOLINTs,
# allocation in the src/nn hot path, raw x86 intrinsics outside
# common/simd.h, and bare std::thread outside the sanctioned thread owners
# (common/thread_pool, serve/retrain_workers). Self-tests run first so a
# broken linter cannot silently pass the tree.
if [[ "$FAST" == 1 ]]; then
  record "lint" "SKIPPED (--fast)"
elif command -v python3 > /dev/null 2>&1; then
  note "lint: tools/lint.py self-tests + tree scan"
  if python3 tests/lint_test.py 2> /dev/null; then
    record "lint-selftest" "OK"
  else
    record "lint-selftest" "FAIL"
  fi
  if python3 tools/lint.py src tests bench; then
    record "lint" "OK"
  else
    record "lint" "FAIL (fix or allowlist in tools/lint_allowlist.txt)"
  fi
else
  echo "WARNING: python3 not found on PATH; skipping project-invariant lint"
  record "lint" "SKIPPED (python3 not installed)"
fi

# --- Summary. ----------------------------------------------------------------
note "summary"
for r in "${RESULTS[@]}"; do echo "  $r"; done
exit "$FAILED"

#!/usr/bin/env python3
"""Project-invariant linter for DBAugur.

Enforces repo-wide conventions that neither the compiler nor clang-tidy
checks, so they cannot erode one "just this once" at a time:

  bare-assert        No bare `assert(...)` anywhere in src/, tests/ or bench/.
                     Contracts use DBAUGUR_CHECK / DBAUGUR_DCHECK, which
                     survive -DNDEBUG and print a message. (`static_assert`
                     and gtest ASSERT_* macros are fine.)
  nondeterminism     No std::rand / srand / std::random_device /
                     time(nullptr) / argless system_clock::now() in src/.
                     Every random draw goes through common/rng.h with an
                     explicit seed; every timestamp is passed in by the
                     caller. This is what keeps retrain cycles replayable.
  atomic-shared-ptr  No std::atomic<std::shared_ptr<...>> anywhere: libstdc++
                     12's free-function implementation trips TSan (GCC PR
                     101761). Use a mutex-guarded shared_ptr (see
                     serve/service.h) instead.
  raw-sync           No raw std:: sync primitives (std::mutex,
                     std::condition_variable, std::lock_guard,
                     std::unique_lock, std::scoped_lock, std::shared_mutex,
                     std::recursive_mutex) outside src/common/mutex.h. All
                     locking goes through dbaugur::Mutex / MutexLock /
                     CondVar so Clang's -Werror=thread-safety capability
                     analysis sees every acquisition (a raw lock is invisible
                     to it and silently exempts the code it guards).
  nolint-discipline  Every `NOLINT` marker names the suppressed check
                     (`// NOLINT(check-name)`) and has a reason in a comment
                     on the same or a preceding line. Bare NOLINTs silence
                     future, unrelated findings.
  nn-alloc           No `new` / malloc / calloc / realloc in src/nn: the
                     training hot path is allocation-free by design (PR 5's
                     fused GEMM kernels); buffers come from the layer
                     workspace arena.
  raw-intrinsics     No raw x86 intrinsics (`_mm*()`, `__m128/256/512`,
                     `__builtin_ia32_*`) or *intrin.h includes outside
                     src/common/simd.h. All SIMD goes through the portable
                     wrapper so the scalar tier stays a complete, testable
                     mirror of every vector path and new ISAs are one-file
                     ports.
  raw-thread         No bare `std::thread` in src/ outside common/thread_pool
                     and serve/retrain_workers (the two sanctioned owners of
                     worker threads). Ad-hoc threads dodge the pools' lifetime
                     discipline (join-on-destruction, bounded concurrency,
                     deadline supervision); lifecycle threads that a class
                     owns 1:1 (e.g. a service's scheduler loop) go on the
                     allowlist with a justification. `std::this_thread` is
                     fine — the rule targets thread *ownership*, not sleeps
                     or yields.

Exit codes: 0 clean, 1 violations found, 2 usage / IO error.

False positives are suppressed through the allowlist file
(tools/lint_allowlist.txt by default): one `<rule-id> <path>` pair per line,
`#` comments allowed. An allowlisted (rule, file) pair skips that rule for
that file only. Rules are applied to comment- and string-stripped source so
that prose like "previously assert()s" never trips a code rule —
nolint-discipline is the exception, since NOLINT markers live in comments.
"""

import argparse
import os
import re
import sys

SOURCE_EXTS = (".cpp", ".h", ".cc", ".hpp")

# ---------------------------------------------------------------------------
# Source preprocessing


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces.

    Line structure is preserved (newlines survive) so reported line numbers
    match the original file. A simple state machine is enough for the repo's
    C++ (no raw strings with embedded quotes in tricky places, no trigraphs).
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # R"( ... )" raw string: find the matching delimiter directly.
                if out and out[-1] == "R":
                    m = re.match(r'R"([^(\s"\\]*)\(', text[i - 1 :])
                    if m:
                        delim = ")" + m.group(1) + '"'
                        end = text.find(delim, i + len(m.group(0)) - 1)
                        if end == -1:
                            end = n
                        seg = text[i : end + len(delim)]
                        out.append("".join("\n" if ch == "\n" else " " for ch in seg))
                        i = end + len(delim)
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules. Each rule is (rule_id, applies(relpath) -> bool,
# check(relpath, raw_text, stripped_text) -> list[(line, message)]).


def _grep(stripped, pattern, message):
    hits = []
    rx = re.compile(pattern)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if rx.search(line):
            hits.append((lineno, message))
    return hits


def in_dirs(*prefixes):
    def applies(relpath):
        return any(
            relpath == p or relpath.startswith(p + os.sep) for p in prefixes
        )

    return applies


def check_bare_assert(relpath, raw, stripped):
    # `assert(` as a standalone token; static_assert and gtest's
    # ASSERT_*/EXPECT_* don't match because of the identifier boundary.
    return _grep(
        stripped,
        r"(?<![A-Za-z0-9_])assert\s*\(",
        "bare assert() — use DBAUGUR_CHECK/DBAUGUR_DCHECK (common/contracts.h); "
        "assert is stripped under -DNDEBUG",
    )


NONDET_PATTERNS = [
    (r"(?<![A-Za-z0-9_])(?:std::)?rand\s*\(\s*\)", "std::rand()"),
    (r"(?<![A-Za-z0-9_])(?:std::)?srand\s*\(", "srand()"),
    (r"(?<![A-Za-z0-9_])(?:std::)?random_device(?![A-Za-z0-9_])",
     "std::random_device"),
    (r"(?<![A-Za-z0-9_])time\s*\(\s*(?:nullptr|NULL|0)\s*\)", "time(nullptr)"),
    (r"system_clock\s*::\s*now\s*\(\s*\)", "system_clock::now()"),
]


def check_nondeterminism(relpath, raw, stripped):
    hits = []
    for pattern, what in NONDET_PATTERNS:
        hits.extend(
            _grep(
                stripped,
                pattern,
                f"nondeterministic source {what} — draw from common/rng.h with "
                "an explicit seed, or take the timestamp as a parameter",
            )
        )
    return hits


def check_atomic_shared_ptr(relpath, raw, stripped):
    hits = _grep(
        stripped,
        r"std::atomic\s*<\s*std::shared_ptr",
        "std::atomic<std::shared_ptr<>> trips TSan on libstdc++ 12 "
        "(GCC PR 101761) — use a mutex-guarded shared_ptr "
        "(see serve/service.h)",
    )
    # atomic_load/atomic_store on shared_ptr hit the same libstdc++ paths.
    hits.extend(
        _grep(
            stripped,
            r"std::atomic_(?:load|store|exchange|compare_exchange)\w*\s*\(\s*&?\s*\w*snapshot",
            "free-function atomic access to shared_ptr trips TSan on "
            "libstdc++ 12 (GCC PR 101761) — use a mutex-guarded shared_ptr",
        )
    )
    return hits


MUTEX_WRAPPER = os.path.join("src", "common", "mutex.h")

RAW_SYNC_RX = (
    r"std::\s*(?:mutex|condition_variable(?:_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_mutex|shared_lock|recursive_mutex|timed_mutex"
    r"|recursive_timed_mutex)(?![A-Za-z0-9_])"
)


def check_raw_sync(relpath, raw, stripped):
    """Raw std:: sync primitives outside the annotated wrapper.

    src/common/mutex.h is the one place allowed to touch them: it wraps them
    in capability-annotated shims, and every other acquisition must go through
    those shims or Clang's thread-safety analysis cannot see it.
    """
    if os.path.normpath(relpath) == MUTEX_WRAPPER:
        return []
    return _grep(
        stripped,
        RAW_SYNC_RX,
        "raw std:: sync primitive — lock through dbaugur::Mutex / MutexLock / "
        "CondVar (common/mutex.h) so the Clang thread-safety analysis sees "
        "the acquisition",
    )


NOLINT_RX = re.compile(r"NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")


def check_nolint_discipline(relpath, raw, stripped):
    """NOLINT must carry a check name and a nearby reason comment.

    Operates on the *raw* source because NOLINT markers live in comments. A
    reason is any comment text beyond the marker itself, on the same line or
    one of the two preceding lines.
    """
    hits = []
    lines = raw.splitlines()
    for lineno, line in enumerate(lines, start=1):
        for m in NOLINT_RX.finditer(line):
            checks = m.group(2)
            if not checks or not checks.strip():
                hits.append(
                    (
                        lineno,
                        "bare NOLINT — name the suppressed check: "
                        "// NOLINT(check-name)",
                    )
                )
                continue
            if not _has_nolint_reason(lines, lineno, m):
                hits.append(
                    (
                        lineno,
                        f"NOLINT({checks.strip()}) without a reason — add a "
                        "comment on the same or a preceding line saying why "
                        "the suppression is sound",
                    )
                )
    return hits


def _has_nolint_reason(lines, lineno, match):
    # Same line: comment text after the NOLINT(...) marker.
    rest = lines[lineno - 1][match.end() :]
    if re.search(r"[A-Za-z]", rest.replace("NOLINT", "")):
        return True
    # Preceding two lines: any comment line counts as the rationale.
    for back in (2, 3):
        idx = lineno - back
        if idx < 0:
            continue
        prev = lines[idx].strip()
        if (prev.startswith("//") or prev.startswith("*")) and re.search(
            r"[A-Za-z]", prev.lstrip("/* ")
        ):
            return True
    return False


def check_nn_alloc(relpath, raw, stripped):
    hits = _grep(
        stripped,
        r"(?<![A-Za-z0-9_])new(?![A-Za-z0-9_])(?!\s*\()",
        "raw `new` in src/nn — the training hot path is allocation-free; "
        "take buffers from the layer workspace",
    )
    hits.extend(
        _grep(
            stripped,
            r"(?<![A-Za-z0-9_:.])(?:malloc|calloc|realloc)\s*\(",
            "C allocation in src/nn — the training hot path is "
            "allocation-free; take buffers from the layer workspace",
        )
    )
    return hits


SIMD_WRAPPER = os.path.join("src", "common", "simd.h")

INTRINSIC_PATTERNS = [
    (r"(?<![A-Za-z0-9_])_mm(?:\d+)?_\w+\s*\(", "_mm* intrinsic call"),
    (r"(?<![A-Za-z0-9_])__m(?:128|256|512)[a-z]*(?![A-Za-z0-9_])",
     "__m128/__m256/__m512 vector type"),
    (r"__builtin_ia32_\w+", "__builtin_ia32_* builtin"),
]


def check_raw_intrinsics(relpath, raw, stripped):
    """Raw x86 SIMD outside the wrapper header.

    The include check runs on the raw text because `#include "..."` paths are
    string literals and would be blanked by the stripper.
    """
    if os.path.normpath(relpath) == SIMD_WRAPPER:
        return []
    hits = []
    for pattern, what in INTRINSIC_PATTERNS:
        hits.extend(
            _grep(
                stripped,
                pattern,
                f"raw {what} — all SIMD goes through common/simd.h "
                "(portable wrapper with a scalar tier); see DESIGN.md",
            )
        )
    include_rx = re.compile(
        r'^\s*#\s*include\s*[<"][^<>"]*(?:mmintrin|immintrin|x86intrin'
        r'|avxintrin|intrin)\.h[>"]'
    )
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if include_rx.search(line):
            hits.append(
                (
                    lineno,
                    "intrinsics header include — only common/simd.h may "
                    "include *intrin.h",
                )
            )
    return hits


THREAD_OWNERS = {
    os.path.join("src", "common", "thread_pool.h"),
    os.path.join("src", "common", "thread_pool.cpp"),
    os.path.join("src", "serve", "retrain_workers.h"),
    os.path.join("src", "serve", "retrain_workers.cpp"),
}

# `std::thread` as a type (ownership), not `std::this_thread` (different
# token) and not `std::thread::hardware_concurrency` (a pure query).
RAW_THREAD_RX = r"std::\s*thread(?![A-Za-z0-9_])(?!\s*::)"


def check_raw_thread(relpath, raw, stripped):
    """Bare std::thread outside the sanctioned worker-pool owners.

    common/thread_pool and serve/retrain_workers are the two places in src/
    that may own raw threads: both join on destruction, bound concurrency,
    and (for the retrain pool) supervise deadlines. A class that owns one
    lifecycle thread 1:1 earns an allowlist entry with a justification
    instead of a free pass here.
    """
    if os.path.normpath(relpath) in THREAD_OWNERS:
        return []
    return _grep(
        stripped,
        RAW_THREAD_RX,
        "bare std::thread — run work on common/thread_pool or "
        "serve/retrain_workers (owned lifecycle threads: allowlist with a "
        "justification)",
    )


RULES = [
    ("bare-assert", in_dirs("src", "tests", "bench"), check_bare_assert),
    ("nondeterminism", in_dirs("src"), check_nondeterminism),
    ("atomic-shared-ptr", in_dirs("src", "tests", "bench"),
     check_atomic_shared_ptr),
    ("raw-sync", in_dirs("src", "tests", "bench"), check_raw_sync),
    ("nolint-discipline", in_dirs("src", "tests", "bench"),
     check_nolint_discipline),
    ("nn-alloc", in_dirs(os.path.join("src", "nn")), check_nn_alloc),
    ("raw-intrinsics", in_dirs("src", "tests", "bench"),
     check_raw_intrinsics),
    ("raw-thread", in_dirs("src"), check_raw_thread),
]


# ---------------------------------------------------------------------------
# Driver


def load_allowlist(path):
    """Parses `<rule-id> <path>` pairs; returns a set of (rule, relpath)."""
    allow = set()
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as f:
        for raw_line in f:
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}: malformed allowlist line: {raw_line.rstrip()!r} "
                    "(expected '<rule-id> <path>')"
                )
            allow.add((parts[0], os.path.normpath(parts[1])))
    return allow


def collect_files(root, targets):
    files = []
    for target in targets:
        abs_target = os.path.join(root, target)
        if os.path.isfile(abs_target):
            if abs_target.endswith(SOURCE_EXTS):
                files.append(os.path.normpath(target))
            continue
        if not os.path.isdir(abs_target):
            raise FileNotFoundError(f"no such file or directory: {target}")
        for dirpath, dirnames, filenames in os.walk(abs_target):
            dirnames.sort()
            # Negative-compile fixtures intentionally violate invariants.
            dirnames[:] = [d for d in dirnames if d != "static_analysis"]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(os.path.normpath(rel))
    return files


def lint_tree(root, targets, allowlist):
    violations = []
    for relpath in collect_files(root, targets):
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            raw = f.read()
        stripped = strip_comments_and_strings(raw)
        for rule_id, applies, check in RULES:
            if not applies(relpath):
                continue
            if (rule_id, relpath) in allowlist:
                continue
            for lineno, message in check(relpath, raw, stripped):
                violations.append((relpath, lineno, rule_id, message))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="DBAugur project-invariant linter"
    )
    parser.add_argument(
        "targets", nargs="+", help="directories or files to lint, e.g. src tests"
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (targets and allowlist paths are relative to it)",
    )
    parser.add_argument(
        "--allowlist",
        default=None,
        help="allowlist file (default: <root>/tools/lint_allowlist.txt)",
    )
    args = parser.parse_args(argv)

    allowlist_path = args.allowlist or os.path.join(
        args.root, "tools", "lint_allowlist.txt"
    )
    try:
        allowlist = load_allowlist(allowlist_path)
        violations = lint_tree(args.root, args.targets, allowlist)
    except (FileNotFoundError, ValueError) as e:
        print(f"lint: error: {e}", file=sys.stderr)
        return 2

    for relpath, lineno, rule_id, message in violations:
        print(f"{relpath}:{lineno}: [{rule_id}] {message}")
    if violations:
        print(
            f"lint: {len(violations)} violation(s); suppress known-good cases "
            f"in {os.path.relpath(allowlist_path, args.root)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Open-ended chaos soak: build the Release tree if needed, then hammer the
# end-to-end harness with fresh seeds until the time budget runs out.
#
#   tools/soak.sh                  # 60s soak
#   tools/soak.sh --seconds=600    # 10-minute soak (nightly CI)
#   tools/soak.sh --start-seed=N   # pin the seed sweep for reproduction
#
# Arm a fault storm on top with:
#   DBAUGUR_FAULT_SPEC='serve.ingest.corrupt=p:0.05:7' tools/soak.sh
#
# On failure the driver prints a one-line repro (--seed=N --profile=P), writes
# the corresponding corpus line to soak_failure.txt, and exits 1.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD_DIR}" --target bench_chaos_soak -j "$(nproc)"

exec "${BUILD_DIR}/bench/chaos_soak" --soak "$@"
